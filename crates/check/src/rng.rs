//! SplitMix64 — the harness's only randomness source.
//!
//! Deterministic, seedable and `Date`-free: the same seed regenerates
//! the same instance stream on every machine and every run, which is
//! what makes a `CUBIS_CHECK_SEED` replay exact. The generator is the
//! 64-bit SplitMix of Steele, Lea & Flood (OOPSLA 2014) — one add and
//! three xor-shift-multiplies per output, equidistributed over the full
//! 64-bit state, and with the useful property that *any* seed (including
//! 0) produces a high-quality stream.

/// SplitMix64 pseudo-random generator (64 bits of state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value is fine, including 0).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)` (returns `lo` when the range is
    /// empty or inverted).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform draw from the **inclusive** integer range `lo..=hi`
    /// (returns `lo` when the range is empty or inverted). The modulo
    /// bias is < 2⁻⁵⁰ for the tiny ranges the generator uses.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Bernoulli draw with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_splitmix64_vectors() {
        // Reference outputs for seed 0 from the original public-domain C
        // implementation (Vigna's splitmix64.c).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_draws_are_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let n = r.range_usize(3, 9);
            assert!((3..=9).contains(&n));
            let x = r.range_f64(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn degenerate_ranges_return_lo() {
        let mut r = SplitMix64::new(1);
        assert_eq!(r.range_usize(4, 4), 4);
        assert_eq!(r.range_usize(5, 2), 5);
        assert!((r.range_f64(1.5, 1.5) - 1.5).abs() < 1e-15);
        let v = r.range_f64(2.0, -1.0);
        assert!((v - 2.0).abs() < 1e-15);
    }
}
