//! `cubis-serve` — run the solve service as a standalone process.
//!
//! ```sh
//! cargo run --release -p cubis-serve -- --addr 127.0.0.1:8787
//! ```
//!
//! Flags (all optional): `--addr <host:port>` (default `127.0.0.1:8787`;
//! port 0 picks an ephemeral port and prints it), `--workers <n>`,
//! `--queue <n>`, `--cache <entries-per-shard>`, and
//! `--data-dir <path>` to attach the persistent cache tier (solved
//! instances survive restarts byte-identically). The process serves
//! until killed; see the crate docs and `ARCHITECTURE.md` §"The
//! serving layer" for the routes and semantics.

use std::process::ExitCode;

use cubis_serve::ServeConfig;

fn usage() -> String {
    "usage: cubis-serve [--addr <host:port>] [--workers <n>] [--queue <n>] [--cache <n>] \
     [--data-dir <path>]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig { addr: "127.0.0.1:8787".to_string(), ..ServeConfig::default() };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs {what}\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("<host:port>")?,
            "--workers" => {
                config.workers =
                    value("<n>")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                config.queue_capacity =
                    value("<n>")?.parse().map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache" => {
                config.cache_capacity_per_shard =
                    value("<n>")?.parse().map_err(|e| format!("--cache: {e}"))?;
            }
            "--data-dir" => {
                config.data_dir = Some(std::path::PathBuf::from(value("<path>")?));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if config.workers == 0 || config.queue_capacity == 0 {
        return Err("--workers and --queue must be at least 1".to_string());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match cubis_serve::start(config) {
        Ok(handle) => {
            println!("cubis-serve listening on http://{}", handle.local_addr());
            println!("routes: POST /v1/solve, POST /v1/solve_batch, GET /healthz, GET /metrics");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(err) => {
            eprintln!("cubis-serve: failed to start: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_and_flags_parse() {
        let config = parse_args(&[]).expect("defaults");
        assert_eq!(config.addr, "127.0.0.1:8787");
        assert_eq!(config.data_dir, None);
        let config = parse_args(&s(&[
            "--addr", "127.0.0.1:0", "--workers", "3", "--queue", "9", "--cache", "5",
            "--data-dir", "/tmp/cubis-cache",
        ]))
        .expect("flags");
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.workers, 3);
        assert_eq!(config.queue_capacity, 9);
        assert_eq!(config.cache_capacity_per_shard, 5);
        assert_eq!(config.data_dir.as_deref(), Some(std::path::Path::new("/tmp/cubis-cache")));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_args(&s(&["--nope"])).is_err());
        assert!(parse_args(&s(&["--workers"])).is_err());
        assert!(parse_args(&s(&["--workers", "zero"])).is_err());
        assert!(parse_args(&s(&["--workers", "0"])).is_err());
    }
}
