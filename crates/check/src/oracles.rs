//! The differential-oracle registry.
//!
//! Each [`Oracle`] takes a generated [`CheckInstance`], recomputes some
//! CUBIS answer by two independent routes and demands agreement within
//! a stated tolerance. Oracles may *skip* instances outside their gate
//! (e.g. brute-force searches cap the grid size) — a skip is not a
//! pass, and the fuzz report counts only performed checks.
//!
//! | oracle                | production route              | reference route                  |
//! |-----------------------|-------------------------------|----------------------------------|
//! | `lp-simplex-vs-dense` | revised simplex (`cubis-lp`)  | vertex enumeration via `linalg`  |
//! | `worst-case-bisect-vs-lp` | φ-bisection oracle        | inner LP (6)–(8)                 |
//! | `inner-dp-vs-brute`   | grid DP                       | exhaustive grid enumeration      |
//! | `inner-greedy-vs-spec`| `GreedyInner`                 | executable-spec replay + DP cap  |
//! | `inner-milp-vs-dp`    | MILP(K) via branch-and-bound  | DP on the breakpoint grid ± Lemma-1 slack |
//! | `bb-seq-vs-par`       | 3-worker branch-and-bound     | sequential branch-and-bound      |
//! | `cubis-vs-brute`      | full CUBIS binary search      | brute-force robust grid search   |
//! | `cubis-warm-vs-cold`  | warm-started CUBIS engine     | cold solve (`warm_start = false`) |
//! | `meta-width-monotone` | —                             | wider `[L,U]` never helps        |
//! | `meta-permutation`    | —                             | invariance under relabeling      |
//! | `meta-k-refine`       | —                             | Lemma-1 error shrinks with `K`   |
//! | `inner-scale-vs-milp` | `ScaleInner` envelope greedy  | DP grid optimum and MILP(K=pp) within certificate + Lemma-1 slack |
//! | `inner-scale-certificate` | `ScaleInner` at large `T` | certificate soundness vs sampled allocations; warm/cold bit-identity |

use crate::dense::{solve_dense, DenseOutcome};
use crate::instance::CheckInstance;
use crate::reference;
use cubis_behavior::UncertainSuqr;
use cubis_core::inner::{DpInner, GreedyInner, InnerSolver, MilpInner, ScaleInner};
use cubis_core::oracle::worst_case_inner_lp;
use cubis_core::piecewise::PiecewiseLinear;
use cubis_core::problem::RobustProblem;
use cubis_core::transform;
use cubis_core::Cubis;
use cubis_game::SecurityGame;
use cubis_lp::{LpOptions, LpProblem, LpStatus, Relation, Sense};

/// Whether an oracle actually checked the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleStatus {
    /// The oracle's gate admitted the instance and all checks passed.
    Checked,
    /// The instance is outside the oracle's gate (too large, etc.).
    Skipped,
}

/// A confirmed disagreement between two routes.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated oracle.
    pub oracle: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// One differential oracle.
pub struct Oracle {
    /// Stable name (used in artifacts and `run_named`).
    pub name: &'static str,
    /// One-line description for docs and reports.
    pub what: &'static str,
    /// The check itself: `Err` carries the violation detail.
    pub run: fn(&CheckInstance) -> Result<OracleStatus, String>,
}

/// All registered oracles, in execution order.
pub fn registry() -> &'static [Oracle] {
    &[
        Oracle {
            name: "lp-simplex-vs-dense",
            what: "revised simplex vs dense vertex-enumeration reference on the worst-case LP",
            run: lp_simplex_vs_dense,
        },
        Oracle {
            name: "worst-case-bisect-vs-lp",
            what: "φ-bisection worst-case oracle vs the inner LP (6)-(8)",
            run: worst_case_bisect_vs_lp,
        },
        Oracle {
            name: "inner-dp-vs-brute",
            what: "grid DP vs exhaustive enumeration of the coverage grid",
            run: inner_dp_vs_brute,
        },
        Oracle {
            name: "inner-greedy-vs-spec",
            what: "GreedyInner vs an executable-spec replay (identical allocations) and the DP cap",
            run: inner_greedy_vs_spec,
        },
        Oracle {
            name: "inner-milp-vs-dp",
            what: "MILP(K) optimum vs DP on the breakpoint grid, within the Lemma-1 slack",
            run: inner_milp_vs_dp,
        },
        Oracle {
            name: "bb-seq-vs-par",
            what: "sequential vs parallel branch-and-bound incumbents on the inner MILP",
            run: bb_seq_vs_par,
        },
        Oracle {
            name: "cubis-vs-brute",
            what: "full CUBIS vs brute-force robust grid search within the Theorem-1 tolerance",
            run: cubis_vs_brute,
        },
        Oracle {
            name: "cubis-warm-vs-cold",
            what: "warm-started CUBIS (grid cache, incumbent carry, bound transfer) vs a cold solve",
            run: cubis_warm_vs_cold,
        },
        Oracle {
            name: "meta-width-monotone",
            what: "metamorphic: widening the uncertainty intervals never helps the defender",
            run: meta_width_monotone,
        },
        Oracle {
            name: "meta-permutation",
            what: "metamorphic: robust values are invariant under target relabeling",
            run: meta_permutation,
        },
        Oracle {
            name: "meta-k-refine",
            what: "metamorphic: Lemma-1 linearization error is bounded and shrinks as K doubles",
            run: meta_k_refine,
        },
        Oracle {
            name: "inner-scale-vs-milp",
            what: "ScaleInner envelope greedy vs the DP grid optimum and MILP(K=pp), \
                   within the certified gap plus Lemma-1 slack",
            run: inner_scale_vs_milp,
        },
        Oracle {
            name: "inner-scale-certificate",
            what: "ScaleInner certificate soundness at large T: envelope dominates sampled \
                   allocations, warm/cold solves are bit-identical, the gap is finite",
            run: inner_scale_certificate,
        },
    ]
}

/// Run every oracle; returns the number of oracles that actually
/// checked the instance, or the first violation.
pub fn run_all(inst: &CheckInstance) -> Result<usize, Violation> {
    run_all_with(inst, &[])
}

/// [`run_all`] over the built-in registry **plus** `extra` oracles.
///
/// Downstream crates that sit above `cubis-check` in the dependency
/// graph (e.g. `cubis-serve`'s cache-vs-fresh oracle) register through
/// this extension point: `cubis-xtask fuzz` passes their oracles in,
/// and they run after the built-ins under the same skip/violation
/// contract.
pub fn run_all_with(inst: &CheckInstance, extra: &[Oracle]) -> Result<usize, Violation> {
    let mut checked = 0usize;
    for oracle in registry().iter().chain(extra) {
        match (oracle.run)(inst) {
            Ok(OracleStatus::Checked) => checked += 1,
            Ok(OracleStatus::Skipped) => {}
            Err(detail) => return Err(Violation { oracle: oracle.name, detail }),
        }
    }
    Ok(checked)
}

/// Run a single oracle by name (the shrinker's re-check predicate).
/// Unknown names are reported as an error, not a pass.
pub fn run_named(name: &str, inst: &CheckInstance) -> Result<OracleStatus, String> {
    run_named_with(name, inst, &[])
}

/// [`run_named`] over the built-in registry plus `extra` oracles.
pub fn run_named_with(
    name: &str,
    inst: &CheckInstance,
    extra: &[Oracle],
) -> Result<OracleStatus, String> {
    for oracle in registry().iter().chain(extra) {
        if oracle.name == name {
            return (oracle.run)(inst);
        }
    }
    Err(format!("unknown oracle `{name}`"))
}

/// Deterministic coverage probe: uniform spread of the resources.
fn probe_x(game: &SecurityGame) -> Vec<f64> {
    cubis_game::uniform_coverage(game.num_targets(), game.resources())
}

/// Three `c` probes spanning the utility range.
fn c_probes<M: cubis_behavior::IntervalChoiceModel>(p: &RobustProblem<'_, M>) -> [f64; 3] {
    let (lo, hi) = p.utility_range();
    [0.2, 0.5, 0.8].map(|f| lo + f * (hi - lo))
}

struct Built {
    game: SecurityGame,
    model: UncertainSuqr,
}

fn build(inst: &CheckInstance) -> Built {
    let game = inst.game();
    let model = inst.model(&game);
    Built { game, model }
}

/// Rebuild the worst-case inner LP (6)-(8) exactly as
/// `cubis_core::oracle::worst_case_inner_lp` assembles it.
fn build_worst_case_lp<M: cubis_behavior::IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    x: &[f64],
) -> LpProblem {
    let t = p.num_targets();
    let mut lp = LpProblem::new(Sense::Minimize);
    let ys: Vec<_> =
        (0..t).map(|i| lp.add_var(format!("y{i}"), 0.0, 1.0, p.ud(i, x[i]))).collect();
    // `z` is bounded above by 1/ΣL ≤ 1/L_max at feasibility; cap it with
    // a data-driven finite bound so the vertex enumeration has a bounded
    // polytope to walk (the simplex needs no such cap).
    let z_cap = (0..t)
        .map(|i| p.bounds(i, x[i]).0)
        .fold(0.0f64, |acc, l| acc + l)
        .recip()
        .max(1.0);
    let z = lp.add_var("z", 0.0, z_cap, 0.0);
    lp.add_constraint(ys.iter().map(|&y| (y, 1.0)).collect(), Relation::Eq, 1.0);
    for i in 0..t {
        let (l, u) = p.bounds(i, x[i]);
        lp.add_constraint(vec![(ys[i], 1.0), (z, -l)], Relation::Ge, 0.0);
        lp.add_constraint(vec![(ys[i], 1.0), (z, -u)], Relation::Le, 0.0);
    }
    lp
}

fn lp_simplex_vs_dense(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if inst.num_targets() > 4 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let x = probe_x(&b.game);
    let lp = build_worst_case_lp(&p, &x);
    let simplex = cubis_lp::solve(&lp, &LpOptions::default())
        .map_err(|e| format!("simplex failed on worst-case LP: {e:?}"))?;
    if simplex.status != LpStatus::Optimal {
        return Err(format!("simplex status {:?} on a bounded feasible LP", simplex.status));
    }
    match solve_dense(&lp, 2_000_000) {
        DenseOutcome::Optimal { objective, .. } => {
            if (simplex.objective - objective).abs() > 1e-6 {
                return Err(format!(
                    "simplex {} vs dense reference {} (Δ = {:e})",
                    simplex.objective,
                    objective,
                    simplex.objective - objective
                ));
            }
            Ok(OracleStatus::Checked)
        }
        DenseOutcome::Infeasible => {
            Err("dense reference found no feasible vertex, simplex reported optimal".into())
        }
        DenseOutcome::TooLarge => Ok(OracleStatus::Skipped),
    }
}

fn worst_case_bisect_vs_lp(inst: &CheckInstance) -> Result<OracleStatus, String> {
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let x = probe_x(&b.game);
    let bisect = p.worst_case(&x).utility;
    let lp = worst_case_inner_lp(&p, &x)
        .ok_or_else(|| "inner LP unsolvable on a valid instance".to_string())?;
    if (bisect - lp).abs() > 1e-5 {
        return Err(format!("bisection {bisect} vs inner LP {lp} (Δ = {:e})", bisect - lp));
    }
    Ok(OracleStatus::Checked)
}

fn inner_dp_vs_brute(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if reference::grid_size(inst.num_targets(), inst.pp) > 20_000 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let dp = DpInner::new(inst.pp);
    for c in c_probes(&p) {
        let res = dp.maximize_g(&p, c).map_err(|e| format!("DP failed at c={c}: {e}"))?;
        let (brute, _) = reference::brute_force_g_max(&p, inst.pp, c);
        if (res.g_value - brute).abs() > 1e-9 {
            return Err(format!(
                "c={c}: DP {} vs brute-force {} (Δ = {:e})",
                res.g_value,
                brute,
                res.g_value - brute
            ));
        }
        let achieved = transform::g_total(&p, &res.x, c);
        if (achieved - res.g_value).abs() > 1e-9 {
            return Err(format!(
                "c={c}: DP allocation achieves {achieved}, reported {}",
                res.g_value
            ));
        }
    }
    Ok(OracleStatus::Checked)
}

fn inner_greedy_vs_spec(inst: &CheckInstance) -> Result<OracleStatus, String> {
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let greedy = GreedyInner::new(inst.pp);
    let dp = DpInner::new(inst.pp);
    for c in c_probes(&p) {
        let got = greedy.maximize_g(&p, c).map_err(|e| format!("greedy failed at c={c}: {e}"))?;
        let spec = reference::spec_greedy(&p, inst.pp, greedy.lookahead, c);
        let got_alloc: Vec<usize> =
            got.x.iter().map(|&xi| (xi * inst.pp as f64).round() as usize).collect();
        if got_alloc != spec.alloc {
            return Err(format!(
                "c={c}: greedy allocation {got_alloc:?} differs from spec {:?}",
                spec.alloc
            ));
        }
        if (got.g_value - spec.g_value).abs() > 1e-12 {
            return Err(format!(
                "c={c}: greedy value {} vs spec {} at the same allocation",
                got.g_value, spec.g_value
            ));
        }
        let exact = dp.maximize_g(&p, c).map_err(|e| format!("DP failed at c={c}: {e}"))?;
        if got.g_value > exact.g_value + 1e-9 {
            return Err(format!(
                "c={c}: greedy {} beats the exact DP {} on the same grid",
                got.g_value, exact.g_value
            ));
        }
    }
    Ok(OracleStatus::Checked)
}

fn inner_milp_vs_dp(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if inst.num_targets() > 4 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let (lo, hi) = p.utility_range();
    let c = lo + 0.5 * (hi - lo);
    let milp = MilpInner::new(inst.k)
        .maximize_g(&p, c)
        .map_err(|e| format!("MILP failed at c={c}: {e}"))?;
    let dp = DpInner::new(inst.k)
        .maximize_g(&p, c)
        .map_err(|e| format!("DP failed at c={c}: {e}"))?;
    // Every breakpoint-grid point is MILP-feasible with Ḡ = G there, so
    // the MILP optimum can't trail the DP. It *can* legitimately exceed
    // it: between breakpoints `min(f̄1, f̄2)` is concave and peaks at the
    // interior crossing of the two lines, a point the grid never
    // samples. Lemma 1 caps both that overshoot and the grid
    // granularity by `max|f′|/K` per target, giving the upper bound.
    let mut slack = 0.0f64;
    for i in 0..inst.num_targets() {
        let e1 = PiecewiseLinear::error_bound_estimate(inst.k, |x| transform::f1(&p, i, x, c));
        let e2 = PiecewiseLinear::error_bound_estimate(inst.k, |x| transform::f2(&p, i, x, c));
        slack += e1.max(e2);
    }
    if milp.g_value < dp.g_value - 1e-7 {
        return Err(format!(
            "c={c}: MILP(K={}) {} trails the breakpoint DP {} (Δ = {:e})",
            inst.k,
            milp.g_value,
            dp.g_value,
            dp.g_value - milp.g_value
        ));
    }
    if milp.g_value > dp.g_value + 2.0 * slack + 1e-6 {
        return Err(format!(
            "c={c}: MILP(K={}) {} exceeds breakpoint DP {} by more than the Lemma-1 slack {:e}",
            inst.k,
            milp.g_value,
            dp.g_value,
            2.0 * slack
        ));
    }
    Ok(OracleStatus::Checked)
}

fn bb_seq_vs_par(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if inst.num_targets() > 4 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let (lo, hi) = p.utility_range();
    let c = lo + 0.4 * (hi - lo);
    // Without the DP warm start branch-and-bound has real work to do,
    // which is what makes the sequential/parallel comparison meaningful.
    let seq = MilpInner::new(inst.k)
        .without_warm_start()
        .with_threads(1)
        .maximize_g(&p, c)
        .map_err(|e| format!("sequential B&B failed at c={c}: {e}"))?;
    let par = MilpInner::new(inst.k)
        .without_warm_start()
        .with_threads(3)
        .maximize_g(&p, c)
        .map_err(|e| format!("parallel B&B failed at c={c}: {e}"))?;
    if (seq.g_value - par.g_value).abs() > 1e-9 {
        return Err(format!(
            "c={c}: sequential incumbent {} vs parallel {} (Δ = {:e})",
            seq.g_value,
            par.g_value,
            seq.g_value - par.g_value
        ));
    }
    Ok(OracleStatus::Checked)
}

fn cubis_vs_brute(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if inst.num_targets() > 4 || reference::grid_size(inst.num_targets(), inst.pp) > 2_500 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let sol = Cubis::new(DpInner::new(inst.pp))
        .with_epsilon(inst.epsilon)
        .solve(&p)
        .map_err(|e| format!("CUBIS solve failed: {e}"))?;
    let (brute, _) = reference::brute_force_robust(&p, inst.pp);
    // Same grid on both sides ⇒ Theorem 1 without the 1/K term:
    // brute is the true grid optimum, so CUBIS can neither beat it nor
    // trail it by more than the binary-search gap ε.
    if sol.worst_case > brute + 1e-7 {
        return Err(format!(
            "CUBIS worst case {} beats the brute-force grid optimum {}",
            sol.worst_case, brute
        ));
    }
    if sol.worst_case < brute - inst.epsilon - 1e-7 {
        return Err(format!(
            "CUBIS worst case {} trails the grid optimum {} by more than ε = {}",
            sol.worst_case, brute, inst.epsilon
        ));
    }
    Ok(OracleStatus::Checked)
}

fn cubis_warm_vs_cold(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if inst.num_targets() > 4 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let mut warm_solver = Cubis::new(MilpInner::new(inst.k)).with_epsilon(inst.epsilon);
    warm_solver.opts.warm_start = true;
    let mut cold_solver = Cubis::new(MilpInner::new(inst.k)).with_epsilon(inst.epsilon);
    cold_solver.opts.warm_start = false;
    let warm = warm_solver.solve(&p).map_err(|e| format!("warm solve failed: {e}"))?;
    let cold = cold_solver.solve(&p).map_err(|e| format!("cold solve failed: {e}"))?;
    // Warm state only prunes: cached grids reassemble bitwise-identical
    // tables, transferred bounds and carried incumbents cannot flip a
    // probe's feasibility sign. The whole binary-search trajectory must
    // therefore be *bit*-identical, not merely close.
    if warm.lb.to_bits() != cold.lb.to_bits() || warm.ub.to_bits() != cold.ub.to_bits() {
        return Err(format!(
            "binary-search bounds diverge: warm [{}, {}] vs cold [{}, {}]",
            warm.lb, warm.ub, cold.lb, cold.ub
        ));
    }
    if warm.binary_steps != cold.binary_steps {
        return Err(format!(
            "step counts diverge: warm {} vs cold {}",
            warm.binary_steps, cold.binary_steps
        ));
    }
    if cold.warm != cubis_core::WarmStats::default() {
        return Err(format!("cold solve reported warm effort: {:?}", cold.warm));
    }
    if warm.binary_steps > 0 && warm.warm.cold_builds != 1 {
        return Err(format!(
            "warm solve built {} grids over {} steps (expected exactly 1)",
            warm.warm.cold_builds, warm.binary_steps
        ));
    }
    // The returned strategies may differ on knife-edge ties (the carried
    // incumbent can win the seed comparison at equal linearized value),
    // but both are ε-optimal on the same K-segment linearization, so
    // their exact worst cases agree within ε plus twice the Lemma-1
    // slack at the certified level.
    let c = warm.lb;
    let mut slack = 0.0f64;
    for i in 0..inst.num_targets() {
        let e1 = PiecewiseLinear::error_bound_estimate(inst.k, |x| transform::f1(&p, i, x, c));
        let e2 = PiecewiseLinear::error_bound_estimate(inst.k, |x| transform::f2(&p, i, x, c));
        slack += e1.max(e2);
    }
    if (warm.worst_case - cold.worst_case).abs() > inst.epsilon + 2.0 * slack + 1e-6 {
        return Err(format!(
            "worst cases diverge beyond ε + Lemma-1 slack: warm {} vs cold {} (Δ = {:e}, band {:e})",
            warm.worst_case,
            cold.worst_case,
            (warm.worst_case - cold.worst_case).abs(),
            inst.epsilon + 2.0 * slack + 1e-6
        ));
    }
    Ok(OracleStatus::Checked)
}

fn meta_width_monotone(inst: &CheckInstance) -> Result<OracleStatus, String> {
    let b = build(inst);
    let x = probe_x(&b.game);
    let narrow = b.model.scale_width(0.5);
    let wide = b.model.scale_width(1.5);
    let base = RobustProblem::new(&b.game, &b.model).worst_case(&x).utility;
    let narrow_wc = RobustProblem::new(&b.game, &narrow).worst_case(&x).utility;
    let wide_wc = RobustProblem::new(&b.game, &wide).worst_case(&x).utility;
    // Wider `[L,U]` is a superset of adversary choices: the worst case
    // can only drop (exact inclusion, so the tolerance is pure float).
    if wide_wc > base + 1e-9 || base > narrow_wc + 1e-9 {
        return Err(format!(
            "worst case not monotone in interval width: narrow {narrow_wc}, base {base}, wide {wide_wc}"
        ));
    }
    Ok(OracleStatus::Checked)
}

fn meta_permutation(inst: &CheckInstance) -> Result<OracleStatus, String> {
    let t = inst.num_targets();
    let perm: Vec<usize> = (0..t).rev().collect();
    let pinst = inst.permuted(&perm);
    let b = build(inst);
    let pb = build(&pinst);
    // Fixed strategy: relabeling game, model and coverage together must
    // reproduce the worst case exactly (the bisection sees the same
    // multiset of targets; only summation order changes).
    let x = probe_x(&b.game);
    let px: Vec<f64> = perm.iter().map(|&j| x[j]).collect();
    let wc = RobustProblem::new(&b.game, &b.model).worst_case(&x).utility;
    let pwc = RobustProblem::new(&pb.game, &pb.model).worst_case(&px).utility;
    if (wc - pwc).abs() > 1e-7 {
        return Err(format!(
            "fixed-x worst case changed under permutation: {wc} vs {pwc} (Δ = {:e})",
            wc - pwc
        ));
    }
    // Solved: the robust value is permutation invariant up to the
    // binary-search tolerance (tie-breaks may pick different optima of
    // equal value).
    let solve = |game: &SecurityGame, model: &UncertainSuqr| {
        let p = RobustProblem::new(game, model);
        Cubis::new(DpInner::new(inst.pp))
            .with_epsilon(inst.epsilon)
            .solve(&p)
            .map(|s| s.worst_case)
            .map_err(|e| format!("CUBIS solve failed: {e}"))
    };
    let v = solve(&b.game, &b.model)?;
    let pv = solve(&pb.game, &pb.model)?;
    if (v - pv).abs() > inst.epsilon + 1e-6 {
        return Err(format!(
            "solved robust value changed under permutation: {v} vs {pv} (ε = {})",
            inst.epsilon
        ));
    }
    Ok(OracleStatus::Checked)
}

fn meta_k_refine(inst: &CheckInstance) -> Result<OracleStatus, String> {
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let (lo, hi) = p.utility_range();
    let c = lo + 0.5 * (hi - lo);
    for i in 0..inst.num_targets() {
        for which in 0..2u8 {
            let f = |x: f64| {
                if which == 0 {
                    transform::f1(&p, i, x, c)
                } else {
                    transform::f2(&p, i, x, c)
                }
            };
            for k in [inst.k, 2 * inst.k] {
                let pw = PiecewiseLinear::build(k, f);
                let observed = (0..=200)
                    .map(|j| {
                        let x = j as f64 / 200.0;
                        (pw.eval(x) - f(x)).abs()
                    })
                    .fold(0.0f64, f64::max);
                // Lemma 1: error ≤ max|f′|/K; doubling K halves the
                // bound, so checking the bound at both K and 2K pins
                // the shrink.
                let bound = PiecewiseLinear::error_bound_estimate(k, f);
                if observed > bound * 1.05 + 1e-9 {
                    return Err(format!(
                        "target {i} f{}: K={k} error {observed} exceeds Lemma-1 bound {bound}",
                        which + 1
                    ));
                }
            }
        }
    }
    Ok(OracleStatus::Checked)
}

fn inner_scale_vs_milp(inst: &CheckInstance) -> Result<OracleStatus, String> {
    if inst.num_targets() > 4 {
        return Ok(OracleStatus::Skipped);
    }
    let b = build(inst);
    let p = RobustProblem::new(&b.game, &b.model);
    let (lo, hi) = p.utility_range();
    let c = lo + 0.5 * (hi - lo);
    // All three engines on the *same* grid (K = pp), so every grid
    // point is MILP-feasible with Ḡ = G there and the DP is the exact
    // grid optimum — the comparisons below need no cross-grid slack.
    let scale = ScaleInner::new(inst.pp);
    let (res, cert) = scale
        .maximize_with_certificate(&p, c)
        .map_err(|e| format!("scale failed at c={c}: {e}"))?;
    let dp = DpInner::new(inst.pp)
        .maximize_g(&p, c)
        .map_err(|e| format!("DP failed at c={c}: {e}"))?;
    let milp = MilpInner::new(inst.pp)
        .maximize_g(&p, c)
        .map_err(|e| format!("MILP failed at c={c}: {e}"))?;
    // The scale allocation is grid-feasible, so it can't beat the DP…
    if res.g_value > dp.g_value + 1e-9 {
        return Err(format!(
            "c={c}: scale {} beats the exact grid DP {} (Δ = {:e})",
            res.g_value,
            dp.g_value,
            res.g_value - dp.g_value
        ));
    }
    // …and the certificate must cover the shortfall (soundness).
    if res.g_value + cert.gap_g < dp.g_value - 1e-9 {
        return Err(format!(
            "c={c}: scale {} + certified gap {:e} trails the DP {} — unsound certificate",
            res.g_value, cert.gap_g, dp.g_value
        ));
    }
    // The grid point is MILP-feasible at the true G value.
    if res.g_value > milp.g_value + 1e-7 {
        return Err(format!(
            "c={c}: scale {} beats the MILP optimum {} on the same breakpoints",
            res.g_value, milp.g_value
        ));
    }
    // MILP can overshoot the grid optimum only between breakpoints, by
    // the Lemma-1 slack (same band as `inner-milp-vs-dp`); the scale
    // value plus its certificate must reach within that band.
    let mut slack = 0.0f64;
    for i in 0..inst.num_targets() {
        let e1 = PiecewiseLinear::error_bound_estimate(inst.pp, |x| transform::f1(&p, i, x, c));
        let e2 = PiecewiseLinear::error_bound_estimate(inst.pp, |x| transform::f2(&p, i, x, c));
        slack += e1.max(e2);
    }
    if milp.g_value > res.g_value + cert.gap_g + 2.0 * slack + 1e-6 {
        return Err(format!(
            "c={c}: MILP {} exceeds scale {} + gap {:e} by more than the Lemma-1 slack {:e}",
            milp.g_value,
            res.g_value,
            cert.gap_g,
            2.0 * slack
        ));
    }
    // Internal consistency of the returned point.
    let sum: f64 = res.x.iter().sum();
    if sum > b.game.resources() + 1e-9 || res.x.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
        return Err(format!("c={c}: scale allocation infeasible (Σx = {sum})"));
    }
    let achieved = transform::g_total(&p, &res.x, c);
    if (achieved - res.g_value).abs() > 1e-9 {
        return Err(format!(
            "c={c}: scale allocation achieves {achieved}, reported {}",
            res.g_value
        ));
    }
    Ok(OracleStatus::Checked)
}

fn inner_scale_certificate(inst: &CheckInstance) -> Result<OracleStatus, String> {
    // Exercised at the size MILP/DP references can't reach: a large
    // game derived deterministically from the instance seed, with the
    // instance's own uncertainty parametrization.
    let t = 200 + (inst.seed % 5) as usize * 100;
    let resources = (t as f64 / 25.0).max(1.0);
    let game = cubis_game::GameGenerator::new(inst.seed ^ 0x5CA1E).generate(t, resources);
    let model = UncertainSuqr::from_game(
        &game,
        cubis_behavior::SuqrUncertainty::paper_example(),
        inst.payoff_delta,
        inst.convention,
    )
    .scale_width(inst.width_factor.max(0.25));
    let p = RobustProblem::new(&game, &model);
    let (lo, hi) = p.utility_range();
    let scale = ScaleInner::new(inst.pp);
    let pp = inst.pp;
    let budget = ((resources * pp as f64).round() as usize).min(t * pp);
    let mut rng = crate::rng::SplitMix64::new(inst.seed ^ 0xCE27_1F1C_A7E5_0000);
    for f in [0.1, 0.5, 0.9] {
        let c = lo + f * (hi - lo);
        let (res, cert) = scale
            .maximize_with_certificate(&p, c)
            .map_err(|e| format!("scale failed at c={c} (T={t}): {e}"))?;
        if !(cert.gap_g >= 0.0 && cert.gap_c >= 0.0 && cert.gap_c.is_finite()) {
            return Err(format!(
                "c={c}: malformed certificate gap_g={} gap_c={}",
                cert.gap_g, cert.gap_c
            ));
        }
        if res.gap.to_bits() != cert.gap_c.to_bits() {
            return Err(format!(
                "c={c}: InnerResult.gap {} disagrees with the certificate {}",
                res.gap, cert.gap_c
            ));
        }
        let sum: f64 = res.x.iter().sum();
        if sum > resources + 1e-9 {
            return Err(format!("c={c}: allocation over budget (Σx = {sum} > {resources})"));
        }
        // Certificate soundness, sampled: no feasible grid allocation
        // may beat the envelope bound.
        for _ in 0..32 {
            let mut rem = budget;
            let mut value = 0.0f64;
            for i in 0..t {
                let a = rng.range_usize(0, pp.min(rem));
                rem -= a;
                value += transform::g(&p, i, a as f64 / pp as f64, c);
            }
            if value > cert.envelope + 1e-9 {
                return Err(format!(
                    "c={c}: sampled grid allocation {value} beats the certified envelope {}",
                    cert.envelope
                ));
            }
        }
        // Warm state may only skip evaluations, never change bits.
        let mut warm = cubis_core::WarmState::new();
        let hot = scale
            .feasibility_g_warm(&p, c, 1e-9, &mut warm)
            .map_err(|e| format!("warm scale failed at c={c}: {e}"))?;
        let again = scale
            .feasibility_g_warm(&p, c, 1e-9, &mut warm)
            .map_err(|e| format!("cached scale failed at c={c}: {e}"))?;
        if hot.g_value.to_bits() != res.g_value.to_bits()
            || again.g_value.to_bits() != res.g_value.to_bits()
            || hot.gap.to_bits() != res.gap.to_bits()
        {
            return Err(format!(
                "c={c}: warm/cold divergence: cold {} vs warm {} vs cached {}",
                res.g_value, hot.g_value, again.g_value
            ));
        }
    }
    Ok(OracleStatus::Checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_documented() {
        let names: Vec<_> = registry().iter().map(|o| o.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate oracle name");
        assert!(registry().iter().all(|o| !o.what.is_empty()));
    }

    #[test]
    fn run_named_rejects_unknown() {
        let inst = CheckInstance::generate(1);
        assert!(run_named("no-such-oracle", &inst).is_err());
    }

    #[test]
    fn small_fixed_seeds_have_no_violations() {
        for seed in [1u64, 2, 3] {
            let inst = CheckInstance::generate(seed);
            match run_all(&inst) {
                Ok(checked) => assert!(checked >= 5, "seed {seed}: only {checked} oracles ran"),
                Err(v) => panic!("seed {seed}: {} violated: {}", v.oracle, v.detail),
            }
        }
    }
}
