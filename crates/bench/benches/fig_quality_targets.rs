//! **F2 bench** — solver cost vs number of targets, plus the printed
//! quality-vs-T table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubis_bench::instance;
use cubis_core::{Cubis, DpInner, RobustProblem};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    cubis_eval::experiments::quality_targets::run(cubis_eval::experiments::Profile::Quick)
        .expect("experiment failed")
        .print();

    let mut g = c.benchmark_group("fig_quality_targets");
    for &t in &[2usize, 5, 10, 20, 40] {
        let r = (t as f64 / 4.0).ceil();
        let (game, model) = instance(0, t, r, 0.5);
        g.bench_with_input(BenchmarkId::new("cubis_dp60", t), &t, |b, _| {
            b.iter(|| {
                let p = RobustProblem::new(black_box(&game), black_box(&model));
                Cubis::new(DpInner::new(60)).with_epsilon(1e-3).solve(&p).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench
}
criterion_main!(benches);
