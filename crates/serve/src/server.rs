//! The HTTP server: acceptor, bounded admission queue, worker pool,
//! graceful shutdown.
//!
//! One acceptor thread owns the listener. It parses each request
//! itself and answers the cheap read-only endpoints (`/healthz`,
//! `/metrics`) inline, so health and observability stay responsive
//! even when every worker is busy — then enqueues solve work onto a
//! bounded queue serviced by a fixed pool of worker threads. Admission
//! control is explicit: a full queue answers `429 Too Many Requests`,
//! a draining server answers `503 Service Unavailable`, and nothing
//! ever blocks the acceptor on solver time.
//!
//! Shutdown is cooperative and drain-first: [`ServerHandle::shutdown`]
//! flips the draining flag, wakes the acceptor with a loopback
//! "poison" connection, and joins the workers — who keep popping until
//! the queue is *empty*, so every request admitted before the drain
//! began still gets its response.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::app::App;
use crate::codec;
use crate::http::{self, HttpError, Request};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` for an ephemeral port.
    pub addr: String,
    /// Worker threads servicing the solve queue.
    pub workers: usize,
    /// Bounded admission-queue capacity (beyond this: 429).
    pub queue_capacity: usize,
    /// Shards of the solution cache.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Honor `x-cubis-test-hold-ms` (integration tests only: lets a
    /// test pin a worker deterministically to fill the queue).
    pub allow_test_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 32,
            io_timeout: Duration::from_secs(10),
            allow_test_hooks: false,
        }
    }
}

/// One admitted solve job.
struct Job {
    stream: TcpStream,
    request: Request,
}

struct Shared {
    app: App,
    queue: Mutex<VecDeque<Job>>,
    wake: Condvar,
    draining: AtomicBool,
    config: ServeConfig,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running server; dropping the handle without calling
/// [`Self::shutdown`] detaches the threads (they live until process
/// exit), so tests and the load generator should always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// Start a server for `config`; returns once the listener is bound
/// and the worker pool is up.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        app: App::new(config.cache_shards, config.cache_capacity_per_shard),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        draining: AtomicBool::new(false),
        config: config.clone(),
    });
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cubis-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cubis-serve-acceptor".to_string())
            .spawn(move || acceptor_loop(&listener, &shared))?
    };
    Ok(ServerHandle { addr, acceptor: Some(acceptor), workers, shared })
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the app (metrics, cache introspection) for
    /// embedding callers like `cubis-xtask loadgen`.
    pub fn app(&self) -> &App {
        &self.shared.app
    }

    /// Graceful shutdown: refuse new work, drain the queue, join all
    /// threads. Every request admitted before this call still gets a
    /// response.
    pub fn shutdown(mut self) {
        self.begin_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.app.metrics().draining.store(1, Ordering::SeqCst);
        // Unblock the acceptor's `accept()` with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        self.shared.wake.notify_all();
    }
}

fn respond(stream: &mut TcpStream, status: u16, headers: &[(&str, &str)], body: &str) {
    // The peer may already be gone; response-write failures are not
    // server errors.
    let _ = http::write_response(stream, status, headers, "application/json", body.as_bytes());
}

fn respond_error(stream: &mut TcpStream, status: u16, code: &str, detail: &str) {
    respond(stream, status, &[], &codec::error_body(code, detail, None));
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Poison pill, or a client that raced the drain: refuse
            // and stop accepting.
            let mut stream = stream;
            shared.app.metrics().rejected_draining.fetch_add(1, Ordering::SeqCst);
            respond_error(&mut stream, 503, "draining", "server is shutting down");
            return;
        }
        handle_connection(stream, shared);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let metrics = shared.app.metrics();
    let timeout = shared.config.io_timeout;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader) {
        Ok(req) => req,
        Err(HttpError::ConnectionClosed) => return,
        Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge(detail)) => {
            metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            respond_error(&mut write_half, 413, "too_large", &detail);
            return;
        }
        Err(HttpError::Malformed(detail)) => {
            metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            respond_error(&mut write_half, 400, "malformed", &detail);
            return;
        }
    };
    metrics.requests_total.fetch_add(1, Ordering::SeqCst);

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            respond(&mut write_half, 200, &[], "{\"status\":\"ok\"}");
        }
        ("GET", "/metrics") => {
            let body = shared.app.render_metrics();
            let _ = http::write_response(
                &mut write_half,
                200,
                &[],
                "text/plain; charset=utf-8",
                body.as_bytes(),
            );
        }
        ("POST", "/v1/solve") | ("POST", "/v1/solve_batch") => {
            let mut queue = shared.lock_queue();
            if queue.len() >= shared.config.queue_capacity {
                drop(queue);
                metrics.rejected_queue_full.fetch_add(1, Ordering::SeqCst);
                respond(
                    &mut write_half,
                    429,
                    &[("retry-after", "1")],
                    &codec::error_body("queue_full", "admission queue is full; retry later", None),
                );
                return;
            }
            queue.push_back(Job { stream: write_half, request });
            metrics.queue_depth.store(queue.len() as u64, Ordering::SeqCst);
            drop(queue);
            shared.wake.notify_one();
        }
        ("GET", "/v1/solve") | ("GET", "/v1/solve_batch") => {
            metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            respond_error(&mut write_half, 405, "method_not_allowed", "use POST");
        }
        _ => {
            metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            respond_error(&mut write_half, 404, "not_found", "unknown route");
        }
    }
}

/// Pop the next job, blocking until one arrives or the drain finishes.
fn next_job(shared: &Shared) -> Option<Job> {
    let metrics = shared.app.metrics();
    let mut queue = shared.lock_queue();
    loop {
        if let Some(job) = queue.pop_front() {
            metrics.queue_depth.store(queue.len() as u64, Ordering::SeqCst);
            return Some(job);
        }
        // Drain-first: only exit on an *empty* queue.
        if shared.draining.load(Ordering::SeqCst) {
            return None;
        }
        queue = shared
            .wake
            .wait_timeout(queue, Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

fn worker_loop(shared: &Shared) {
    let metrics = shared.app.metrics();
    while let Some(mut job) = next_job(shared) {
        metrics.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        if shared.config.allow_test_hooks {
            if let Some(ms) =
                job.request.header("x-cubis-test-hold-ms").and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        let body_text = String::from_utf8_lossy(&job.request.body).into_owned();
        let response = match job.request.path.as_str() {
            "/v1/solve" => shared.app.handle_solve_body(&body_text),
            _ => shared.app.handle_batch_body(&body_text),
        };
        let mut headers = vec![("x-cubis-cache", response.cache.header_value())];
        if let Some(engine) = response.inner {
            headers.push(("x-cubis-inner", engine));
        }
        respond(&mut job.stream, response.status, &headers, &response.body);
        metrics.solve_latency.observe(started.elapsed());
        metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Transport-level behavior (routing, backpressure, drain) is
    // exercised end-to-end in `tests/tests/serve.rs`; here we keep the
    // cheap invariants that don't need a solve.

    #[test]
    fn boots_on_ephemeral_port_and_answers_health() {
        let handle = start(ServeConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = handle.local_addr();
        let resp =
            http::roundtrip(addr, "GET", "/healthz", &[], b"", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains("ok"));
        let resp =
            http::roundtrip(addr, "GET", "/nope", &[], b"", Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 404);
        handle.shutdown();
    }

    #[test]
    fn refuses_after_shutdown() {
        let handle = start(ServeConfig::default()).expect("bind ephemeral port");
        let addr = handle.local_addr();
        handle.shutdown();
        // The listener is closed once the acceptor exits: either the
        // connection is refused outright or (if it raced the close) it
        // sees a 503.
        let outcome = http::roundtrip(addr, "GET", "/healthz", &[], b"", Duration::from_secs(2));
        match outcome {
            Err(_) => {}
            Ok(resp) => assert_eq!(resp.status, 503),
        }
    }
}
