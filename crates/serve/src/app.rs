//! The transport-free request handler.
//!
//! [`App`] owns everything a solve needs — the LRU cache, the metrics
//! sheet, the trace recorder — and maps decoded requests to `(status,
//! body, cache marker)` without touching a socket. The HTTP server's
//! workers call it, and so does the `cubis-serve-cache-vs-fresh` fuzz
//! oracle, which is the point: the oracle exercises the *exact* code
//! path production requests take, not a lookalike.
//!
//! Solves route between two deterministic inner backends at the
//! instance's own `pp`/`epsilon` knobs: the exact DP grid
//! ([`cubis_core::DpInner`]) for small instances and the certified
//! breakpoint-grid engine ([`cubis_core::ScaleInner`]) above
//! [`cubis_core::AUTO_SCALE_THRESHOLD`] targets. The default
//! ([`codec::RequestPolicy::Auto`]) routes by target count; a request
//! may force either backend, and forced requests are cached under a
//! policy-qualified content key so the engines never share entries.
//! Both backends are deterministic (fixed grids, no tie-breaking
//! ambiguity), which the bit-identical cache contract depends on. The
//! cache marker travels as the `X-Cubis-Cache` *header*, never in the
//! body, so hit and fresh bodies can be compared byte-for-byte; the
//! engine that produced (or would produce) a body is echoed in
//! `X-Cubis-Inner`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cubis_check::CheckInstance;
use cubis_core::problem::RobustProblem;
use cubis_core::{
    Cubis, CubisSolution, Deadline, DpInner, ScaleInner, SolveError, AUTO_SCALE_THRESHOLD,
};
use cubis_trace::{CounterSetRecorder, Recorder, SharedRecorder};

use crate::cache::{CacheTier, SolutionCache};
use crate::codec::{self, BatchRequest, RequestPolicy, SolveRequest};
use crate::metrics::ServerMetrics;

/// How a response relates to the solution cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Solved fresh (and inserted).
    Miss,
    /// The cache was not consulted (errors, batch envelopes).
    NotApplicable,
}

impl CacheOutcome {
    /// The `X-Cubis-Cache` header value.
    pub fn header_value(&self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Miss => "miss",
            Self::NotApplicable => "none",
        }
    }
}

/// A transport-free response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text.
    pub body: String,
    /// Cache disposition (drives the `X-Cubis-Cache` header).
    pub cache: CacheOutcome,
    /// The inner engine that produced the body (drives the
    /// `X-Cubis-Inner` header; `None` on errors and batch envelopes,
    /// whose items carry their own `inner` field).
    pub inner: Option<&'static str>,
    /// Which cache tier satisfied a [`CacheOutcome::Hit`] (drives the
    /// `X-Cubis-Cache-Tier` header; `None` otherwise).
    pub tier: Option<CacheTier>,
}

impl ApiResponse {
    fn ok(body: String, cache: CacheOutcome, inner: Option<&'static str>) -> Self {
        Self { status: 200, body, cache, inner, tier: None }
    }

    fn error(status: u16, code: &str, detail: &str) -> Self {
        Self {
            status,
            body: codec::error_body(code, detail, None),
            cache: CacheOutcome::NotApplicable,
            inner: None,
            tier: None,
        }
    }
}

/// The solve application: cache + metrics + solver configuration.
pub struct App {
    cache: SolutionCache,
    metrics: Arc<ServerMetrics>,
    trace: Arc<CounterSetRecorder>,
}

impl App {
    /// Build an app with a memory-only cache of `shards ×
    /// per_shard_capacity` hot entries and fresh metrics/trace sheets.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        Self::with_cache(SolutionCache::new(shards, per_shard_capacity))
    }

    /// Build an app whose cache falls through to a persistent tier
    /// under `data_dir`; solutions survive restarts byte-identically.
    pub fn with_data_dir(
        shards: usize,
        per_shard_capacity: usize,
        data_dir: &std::path::Path,
    ) -> std::io::Result<Self> {
        Ok(Self::with_cache(SolutionCache::with_disk_tier(
            shards,
            per_shard_capacity,
            data_dir,
        )?))
    }

    fn with_cache(cache: SolutionCache) -> Self {
        Self {
            cache,
            metrics: Arc::new(ServerMetrics::default()),
            trace: Arc::new(CounterSetRecorder::new()),
        }
    }

    /// Record a cache hit against its tier: the serve metrics sheet
    /// plus the per-tier trace counters.
    fn count_hit(&self, tier: CacheTier) {
        self.metrics.cache_hits.fetch_add(1, Ordering::SeqCst);
        let recorder = SharedRecorder::new(Arc::clone(&self.trace) as Arc<dyn Recorder>);
        match tier {
            CacheTier::Hot => recorder.counter("serve.cache_tier1_hits", 1),
            CacheTier::Persistent => recorder.counter("serve.cache_tier2_hits", 1),
        }
    }

    /// The shared metrics sheet (the server increments transport-level
    /// counters on it directly).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The solver-side trace recorder (rendered into `/metrics`).
    pub fn trace(&self) -> Arc<CounterSetRecorder> {
        Arc::clone(&self.trace)
    }

    /// Render the `/metrics` text body.
    pub fn render_metrics(&self) -> String {
        self.metrics.render(&self.trace)
    }

    /// Entries currently in the hot cache tier.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Records in the persistent cache tier (0 without a data dir).
    pub fn cache_persistent_len(&self) -> usize {
        self.cache.persistent_len()
    }

    fn deadline_from_ms(deadline_ms: Option<u64>) -> Deadline {
        match deadline_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::none(),
        }
    }

    /// The inner engine a `(policy, target count)` pair resolves to:
    /// `"dp"` or `"scale"`. `Auto` mirrors the core's
    /// [`cubis_core::InnerPolicy::Auto`] size threshold.
    pub fn engine_for(policy: RequestPolicy, targets: usize) -> &'static str {
        match policy {
            RequestPolicy::Dp => "dp",
            RequestPolicy::Scale => "scale",
            RequestPolicy::Auto => {
                if targets > AUTO_SCALE_THRESHOLD {
                    "scale"
                } else {
                    "dp"
                }
            }
        }
    }

    /// The cache content key for an instance under a policy: the
    /// canonical bytes, policy-qualified when the request forces an
    /// engine so `dp` and `scale` bodies never alias.
    fn cache_content(inst: &CheckInstance, policy: RequestPolicy) -> String {
        let canon = cubis_check::canon::content_bytes(inst);
        if policy == RequestPolicy::Auto {
            canon
        } else {
            format!("{canon}\npolicy={}", policy.as_str())
        }
    }

    /// Run one fresh solve (no cache involvement) and encode the body.
    /// Public so the differential oracle can compare a from-scratch
    /// solve against the cached handler path.
    pub fn solve_fresh(
        &self,
        inst: &CheckInstance,
        deadline: Deadline,
        policy: RequestPolicy,
    ) -> Result<String, SolveError> {
        let game = inst.game();
        let model = inst.model(&game);
        let problem = RobustProblem::new(&game, &model);
        let recorder = SharedRecorder::new(
            Arc::clone(&self.trace) as Arc<dyn cubis_trace::Recorder>
        );
        let solution: CubisSolution = match Self::engine_for(policy, inst.num_targets()) {
            "scale" => Cubis::new(ScaleInner::new(inst.pp))
                .with_epsilon(inst.epsilon)
                .with_deadline(deadline)
                .with_recorder(recorder)
                .solve(&problem)?,
            _ => Cubis::new(DpInner::new(inst.pp))
                .with_epsilon(inst.epsilon)
                .with_deadline(deadline)
                .with_recorder(recorder)
                .solve(&problem)?,
        };
        Ok(codec::solution_to_json(inst.content_hash(), &solution).to_json_string())
    }

    fn solve_one(
        &self,
        inst: &CheckInstance,
        deadline_ms: Option<u64>,
        policy: RequestPolicy,
    ) -> ApiResponse {
        if !inst.is_valid() {
            self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::error(422, "invalid_instance", "instance fails validity checks");
        }
        let engine = Self::engine_for(policy, inst.num_targets());
        let hash = inst.content_hash();
        let content = Self::cache_content(inst, policy);
        if let Some((body, tier)) = self.cache.get_tiered(hash, &content) {
            self.count_hit(tier);
            return ApiResponse {
                tier: Some(tier),
                ..ApiResponse::ok(body, CacheOutcome::Hit, Some(engine))
            };
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::SeqCst);
        match self.solve_fresh(inst, Self::deadline_from_ms(deadline_ms), policy) {
            Ok(body) => {
                self.cache.insert(hash, &content, &body);
                ApiResponse::ok(body, CacheOutcome::Miss, Some(engine))
            }
            Err(SolveError::DeadlineExceeded { lb, ub, binary_steps }) => {
                self.metrics.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                ApiResponse {
                    status: 504,
                    body: codec::error_body(
                        "deadline_exceeded",
                        "solve deadline expired; incumbent bounds attached",
                        Some((lb, ub, binary_steps)),
                    ),
                    cache: CacheOutcome::NotApplicable,
                    inner: None,
                    tier: None,
                }
            }
            Err(e) => {
                self.metrics.server_errors.fetch_add(1, Ordering::SeqCst);
                ApiResponse::error(500, "solve_failed", &e.to_string())
            }
        }
    }

    /// Handle a decoded `POST /v1/solve`.
    pub fn handle_solve(&self, req: &SolveRequest) -> ApiResponse {
        self.solve_one(&req.instance, req.deadline_ms, req.policy)
    }

    /// Handle a raw `POST /v1/solve` body.
    pub fn handle_solve_body(&self, body: &str) -> ApiResponse {
        match SolveRequest::from_json_str(body) {
            Ok(req) => self.handle_solve(&req),
            Err(detail) => {
                self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
                ApiResponse::error(400, "bad_request", &detail)
            }
        }
    }

    /// Handle a decoded `POST /v1/solve_batch`.
    ///
    /// Cache hits are filled in directly; the misses are fanned into
    /// one [`Cubis::solve_batch`] call, so a batch of fresh instances
    /// pays one rayon fan-out rather than `n` sequential solves. Every
    /// item's result is independently identical to what `/v1/solve`
    /// would have returned for it.
    pub fn handle_batch(&self, req: &BatchRequest) -> ApiResponse {
        if req.instances.is_empty() {
            self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::error(422, "empty_batch", "batch has no instances");
        }
        if let Some(bad) = req.instances.iter().find(|i| !i.is_valid()) {
            self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::error(
                422,
                "invalid_instance",
                &format!("instance with seed {:#x} fails validity checks", bad.seed),
            );
        }
        let keys: Vec<(u64, String)> = req
            .instances
            .iter()
            .map(|i| (i.content_hash(), Self::cache_content(i, req.policy)))
            .collect();
        let engines: Vec<&'static str> = req
            .instances
            .iter()
            .map(|i| Self::engine_for(req.policy, i.num_targets()))
            .collect();
        let mut slots: Vec<Option<(String, CacheOutcome)>> = keys
            .iter()
            .map(|(hash, content)| {
                self.cache.get_tiered(*hash, content).map(|(body, tier)| {
                    self.count_hit(tier);
                    (body, CacheOutcome::Hit)
                })
            })
            .collect();

        // Fan the misses into one solve_batch call. Grouping by
        // `(pp, ε, engine)` keeps one solver (one inner backend at one
        // resolution) per group.
        let miss_idx: Vec<usize> =
            (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
        self.metrics.cache_misses.fetch_add(miss_idx.len() as u64, Ordering::SeqCst);
        let deadline = Self::deadline_from_ms(req.deadline_ms);
        let recorder = SharedRecorder::new(
            Arc::clone(&self.trace) as Arc<dyn cubis_trace::Recorder>
        );
        let mut by_knobs: std::collections::BTreeMap<(usize, u64, &'static str), Vec<usize>> =
            std::collections::BTreeMap::new();
        for &i in &miss_idx {
            let inst = &req.instances[i];
            by_knobs.entry((inst.pp, inst.epsilon.to_bits(), engines[i])).or_default().push(i);
        }
        for ((pp, eps_bits, engine), idxs) in by_knobs {
            let built: Vec<_> = idxs
                .iter()
                .map(|&i| {
                    let game = req.instances[i].game();
                    let model = req.instances[i].model(&game);
                    (game, model)
                })
                .collect();
            let problems: Vec<_> =
                built.iter().map(|(game, model)| RobustProblem::new(game, model)).collect();
            let results = if engine == "scale" {
                Cubis::new(ScaleInner::new(pp))
                    .with_epsilon(f64::from_bits(eps_bits))
                    .with_deadline(deadline)
                    .with_recorder(recorder.clone())
                    .solve_batch(&problems)
            } else {
                Cubis::new(DpInner::new(pp))
                    .with_epsilon(f64::from_bits(eps_bits))
                    .with_deadline(deadline)
                    .with_recorder(recorder.clone())
                    .solve_batch(&problems)
            };
            for (&i, result) in idxs.iter().zip(results) {
                let slot = match result {
                    Ok(sol) => {
                        let (hash, content) = &keys[i];
                        let body = codec::solution_to_json(*hash, &sol).to_json_string();
                        self.cache.insert(*hash, content, &body);
                        (body, CacheOutcome::Miss)
                    }
                    Err(SolveError::DeadlineExceeded { lb, ub, binary_steps }) => {
                        self.metrics.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                        let body = codec::error_body(
                            "deadline_exceeded",
                            "solve deadline expired; incumbent bounds attached",
                            Some((lb, ub, binary_steps)),
                        );
                        (body, CacheOutcome::NotApplicable)
                    }
                    Err(e) => {
                        self.metrics.server_errors.fetch_add(1, Ordering::SeqCst);
                        let body = codec::error_body("solve_failed", &e.to_string(), None);
                        (body, CacheOutcome::NotApplicable)
                    }
                };
                slots[i] = Some(slot);
            }
        }

        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            // Every index was either a hit or assigned by the loop
            // above; a `None` here would be a logic error, reported as
            // a 500 rather than a panic (NUM02: no unwraps in servers).
            match slot {
                Some((body, outcome)) => results.push((body, outcome)),
                None => {
                    self.metrics.server_errors.fetch_add(1, Ordering::SeqCst);
                    return ApiResponse::error(500, "internal", "batch slot left unfilled");
                }
            }
        }
        let items: Vec<cubis_trace::json::JsonValue> = results
            .iter()
            .zip(&engines)
            .map(|((body, outcome), engine)| {
                // Bodies are our own codec output; parse failure here
                // would mean the encoder is broken.
                let value = cubis_trace::json::parse(body).unwrap_or_else(|_| {
                    cubis_trace::json::JsonValue::Str("unencodable body".to_string())
                });
                cubis_trace::json::JsonValue::Obj(vec![
                    (
                        "cache".to_string(),
                        cubis_trace::json::JsonValue::Str(outcome.header_value().to_string()),
                    ),
                    (
                        "inner".to_string(),
                        cubis_trace::json::JsonValue::Str((*engine).to_string()),
                    ),
                    ("result".to_string(), value),
                ])
            })
            .collect();
        let envelope = cubis_trace::json::JsonValue::Obj(vec![
            ("version".to_string(), cubis_trace::json::JsonValue::Num(codec::WIRE_VERSION)),
            (
                "kind".to_string(),
                cubis_trace::json::JsonValue::Str(codec::KIND_BATCH.to_string()),
            ),
            ("results".to_string(), cubis_trace::json::JsonValue::Arr(items)),
        ]);
        ApiResponse::ok(envelope.to_json_string(), CacheOutcome::NotApplicable, None)
    }

    /// Handle a raw `POST /v1/solve_batch` body.
    pub fn handle_batch_body(&self, body: &str) -> ApiResponse {
        match BatchRequest::from_json_str(body) {
            Ok(req) => self.handle_batch(&req),
            Err(detail) => {
                self.metrics.client_errors.fetch_add(1, Ordering::SeqCst);
                ApiResponse::error(400, "bad_request", &detail)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance(seed: u64) -> CheckInstance {
        // Clamp the generated knobs so app-level tests stay fast.
        let mut inst = CheckInstance::generate(seed);
        inst.pp = inst.pp.min(4);
        inst
    }

    #[test]
    fn second_identical_solve_is_a_bit_identical_hit() {
        let app = App::new(4, 16);
        let req = SolveRequest { instance: small_instance(42), deadline_ms: None, policy: RequestPolicy::Auto };
        let first = app.handle_solve(&req);
        assert_eq!(first.status, 200);
        assert_eq!(first.cache, CacheOutcome::Miss);
        let second = app.handle_solve(&req);
        assert_eq!(second.status, 200);
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(first.body, second.body, "cached body must be bit-identical");
        assert_eq!(app.cache_len(), 1);
    }

    #[test]
    fn invalid_instance_is_422_and_bad_json_is_400() {
        let app = App::new(1, 4);
        let mut inst = small_instance(1);
        inst.resources = 99.0; // > num_targets → invalid
        let resp = app.handle_solve(&SolveRequest { instance: inst, deadline_ms: None, policy: RequestPolicy::Auto });
        assert_eq!(resp.status, 422);
        assert_eq!(codec::error_code(&resp.body).as_deref(), Some("invalid_instance"));
        let resp = app.handle_solve_body("not json at all");
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn zero_deadline_is_504_with_incumbent() {
        let app = App::new(1, 4);
        let req = SolveRequest { instance: small_instance(5), deadline_ms: Some(0), policy: RequestPolicy::Auto };
        let resp = app.handle_solve(&req);
        assert_eq!(resp.status, 504);
        assert_eq!(codec::error_code(&resp.body).as_deref(), Some("deadline_exceeded"));
        let v = cubis_trace::json::parse(&resp.body).unwrap();
        assert!(v.get("incumbent").is_some(), "504 body must carry incumbent bounds");
        // A 504 must not poison the cache.
        assert_eq!(app.cache_len(), 0);
    }

    #[test]
    fn batch_mixes_hits_and_misses_and_matches_single_solves() {
        let app = App::new(4, 16);
        let a = small_instance(10);
        let b = small_instance(11);
        // Prime the cache with `a`.
        let single_a =
            app.handle_solve(&SolveRequest { instance: a.clone(), deadline_ms: None, policy: RequestPolicy::Auto });
        let resp = app.handle_batch(&BatchRequest {
            instances: vec![a.clone(), b.clone(), a.clone()],
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        });
        assert_eq!(resp.status, 200);
        let v = cubis_trace::json::parse(&resp.body).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(results[1].get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(results[2].get("cache").unwrap().as_str(), Some("hit"));
        // The batch item for `a` is the same solution the single solve
        // produced.
        let item_a = results[0].get("result").unwrap().to_json_string();
        assert_eq!(item_a, single_a.body);
        // And `b` is now cached for singles.
        let single_b = app.handle_solve(&SolveRequest { instance: b, deadline_ms: None, policy: RequestPolicy::Auto });
        assert_eq!(single_b.cache, CacheOutcome::Hit);
    }

    #[test]
    fn empty_batch_is_422() {
        let app = App::new(1, 4);
        let resp = app.handle_batch(&BatchRequest { instances: vec![], deadline_ms: None, policy: RequestPolicy::Auto });
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn forced_policies_route_and_cache_separately() {
        let app = App::new(4, 16);
        let inst = small_instance(33);
        assert_eq!(App::engine_for(RequestPolicy::Auto, inst.num_targets()), "dp");
        let auto = app.handle_solve(&SolveRequest {
            instance: inst.clone(),
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        });
        assert_eq!((auto.status, auto.inner), (200, Some("dp")));
        let forced = app.handle_solve(&SolveRequest {
            instance: inst.clone(),
            deadline_ms: None,
            policy: RequestPolicy::Scale,
        });
        assert_eq!((forced.status, forced.inner), (200, Some("scale")));
        assert_eq!(forced.cache, CacheOutcome::Miss, "forced engine must not reuse auto's entry");
        assert_eq!(app.cache_len(), 2, "dp and scale bodies live under distinct keys");
        let again = app.handle_solve(&SolveRequest {
            instance: inst,
            deadline_ms: None,
            policy: RequestPolicy::Scale,
        });
        assert_eq!(again.cache, CacheOutcome::Hit);
        assert_eq!(again.body, forced.body, "cached scale body must be bit-identical");
        let scale_view = codec::SolutionView::from_json_str(&forced.body).unwrap();
        assert!(scale_view.inner_gap.is_finite() && scale_view.inner_gap >= 0.0);
        let dp_view = codec::SolutionView::from_json_str(&auto.body).unwrap();
        assert_eq!(dp_view.inner_gap, 0.0, "the DP backend is exact");
    }

    #[test]
    fn auto_routes_large_instances_to_scale() {
        assert_eq!(App::engine_for(RequestPolicy::Auto, AUTO_SCALE_THRESHOLD), "dp");
        assert_eq!(App::engine_for(RequestPolicy::Auto, AUTO_SCALE_THRESHOLD + 1), "scale");
        assert_eq!(App::engine_for(RequestPolicy::Dp, 10_000), "dp");
        assert_eq!(App::engine_for(RequestPolicy::Scale, 1), "scale");
    }

    #[test]
    fn persistent_tier_survives_an_app_restart_byte_identically() {
        let dir = std::env::temp_dir()
            .join(format!("cubis-app-tier2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = SolveRequest {
            instance: small_instance(77),
            deadline_ms: None,
            policy: RequestPolicy::Auto,
        };
        let first = {
            let app = App::with_data_dir(2, 8, &dir).expect("open data dir");
            let first = app.handle_solve(&req);
            assert_eq!((first.status, first.cache), (200, CacheOutcome::Miss));
            assert_eq!(app.cache_persistent_len(), 1);
            // A hot hit reports tier 1.
            let again = app.handle_solve(&req);
            assert_eq!(again.tier, Some(CacheTier::Hot));
            first
        };
        // A "restarted" app on the same dir: cold memory, warm disk.
        let app = App::with_data_dir(2, 8, &dir).expect("reopen data dir");
        assert_eq!(app.cache_len(), 0);
        let resp = app.handle_solve(&req);
        assert_eq!(resp.cache, CacheOutcome::Hit);
        assert_eq!(resp.tier, Some(CacheTier::Persistent));
        assert_eq!(resp.body, first.body, "tier-2 hit must be bit-identical across restarts");
        let text = app.render_metrics();
        assert!(
            text.contains("cubis_trace_counter{name=\"serve.cache_tier2_hits\"} 1"),
            "metrics:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_reflect_traffic() {
        let app = App::new(1, 4);
        let req = SolveRequest { instance: small_instance(20), deadline_ms: None, policy: RequestPolicy::Auto };
        app.handle_solve(&req);
        app.handle_solve(&req);
        let text = app.render_metrics();
        assert!(text.contains("cubis_serve_cache_hits 1"), "metrics:\n{text}");
        assert!(text.contains("cubis_serve_cache_misses 1"), "metrics:\n{text}");
        // Solver-side trace counters flowed through the recorder.
        assert!(text.contains("cubis_trace_"), "metrics:\n{text}");
    }
}
