//! Non-robust baselines: best response to a point quantal-response
//! model.
//!
//! The paper's strawman defender "simply uses the mid points of the
//! uncertainty intervals": she best-responds to the point model
//! `F_i = (L_i + U_i)/2`. With a degenerate interval (`L = F = U`) the
//! robust problem (5) collapses to the classic QR defender optimization
//! of Yang et al. (IJCAI'11) — so the implementation *reuses the entire
//! CUBIS machinery* with a [`FixedChoice`] wrapper: the same binary
//! search + separable inner maximization is exactly the PASAQ algorithm
//! in that degenerate case.

use cubis_behavior::{ChoiceModel, FixedChoice, IntervalChoiceModel};
use cubis_core::{Cubis, DpInner, RobustProblem, SolveError};
use cubis_game::SecurityGame;

/// Best response to an arbitrary point [`ChoiceModel`] (PASAQ-style:
/// binary search + grid inner maximization at `resolution` points per
/// unit coverage).
pub fn solve_point_qr<M: ChoiceModel>(
    game: &SecurityGame,
    model: &M,
    resolution: usize,
    epsilon: f64,
) -> Result<Vec<f64>, SolveError> {
    let fixed = FixedChoiceRef(model);
    let prob = RobustProblem::new(game, &fixed);
    let solver = Cubis::new(DpInner::new(resolution)).with_epsilon(epsilon);
    Ok(solver.solve(&prob)?.x)
}

/// Best response to the midpoint `(L+U)/2` of an interval model — the
/// paper's non-robust comparator.
pub fn solve_midpoint<M: IntervalChoiceModel>(
    game: &SecurityGame,
    model: &M,
    resolution: usize,
    epsilon: f64,
) -> Result<Vec<f64>, SolveError> {
    let mid = MidpointRef(model);
    let prob = RobustProblem::new(game, &mid);
    let solver = Cubis::new(DpInner::new(resolution)).with_epsilon(epsilon);
    Ok(solver.solve(&prob)?.x)
}

/// Best response to the SUQR model at the **midpoints of the parameter
/// intervals** (weights and attacker payoffs). This is the paper's
/// Table-I "midpoint" defender: the Table-I reconstruction (see
/// DESIGN.md §2) only matches the paper's strategy (0.34, 0.66) with
/// this variant, not with the midpoint of `[L, U]`.
pub fn solve_midpoint_params(
    game: &SecurityGame,
    model: &cubis_behavior::UncertainSuqr,
    resolution: usize,
    epsilon: f64,
) -> Result<Vec<f64>, SolveError> {
    let mid = MidParamsRef(model);
    let prob = RobustProblem::new(game, &mid);
    let solver = Cubis::new(DpInner::new(resolution)).with_epsilon(epsilon);
    Ok(solver.solve(&prob)?.x)
}

/// Degenerate interval at the parameter-midpoint SUQR exponent.
struct MidParamsRef<'m>(&'m cubis_behavior::UncertainSuqr);

impl IntervalChoiceModel for MidParamsRef<'_> {
    fn log_bounds(&self, _game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let w = &self.0.weights;
        let (ra, pa) = self.0.payoffs[i];
        let e = w.w1.mid() * x_i + w.w2.mid() * ra.mid() + w.w3.mid() * pa.mid();
        (e, e)
    }
}

/// Borrow-friendly [`FixedChoice`]: degenerate interval around `&M`.
struct FixedChoiceRef<'m, M>(&'m M);

impl<M: ChoiceModel> IntervalChoiceModel for FixedChoiceRef<'_, M> {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let l = self.0.log_attractiveness(game, i, x_i);
        (l, l)
    }
}

/// Degenerate interval at the midpoint of another interval model.
struct MidpointRef<'m, M>(&'m M);

impl<M: IntervalChoiceModel> IntervalChoiceModel for MidpointRef<'_, M> {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let m = self.0.midpoint(game, i, x_i).ln();
        (m, m)
    }
}

// Re-exported so callers can name the wrapper type if they need it.
pub use cubis_behavior::uncertain::IntervalMidpoint;
const _: fn() = || {
    // Compile-time reminder that FixedChoice stays API-compatible.
    fn assert_interval<M: IntervalChoiceModel>() {}
    assert_interval::<FixedChoice<cubis_behavior::Qr>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{
        attack_distribution, BoundConvention, Qr, Suqr, SuqrUncertainty, SuqrWeights, UncertainSuqr,
    };
    use cubis_game::GameGenerator;

    #[test]
    fn point_qr_beats_random_strategies_on_point_objective() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let game = GameGenerator::new(41).generate(5, 2.0);
        let model = Suqr::new(SuqrWeights::LITERATURE);
        let x = solve_point_qr(&game, &model, 60, 1e-4).unwrap();
        let value = |xs: &[f64]| {
            let q = attack_distribution(&model, &game, xs);
            game.expected_defender_utility(xs, &q)
        };
        let v_star = value(&x);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let raw: Vec<f64> = (0..5).map(|_| rng.gen_range(-0.5..1.5)).collect();
            let cand = cubis_game::project_capped_simplex(&raw, 2.0);
            assert!(value(&cand) <= v_star + 0.05, "beaten by {:?}", cand);
        }
    }

    #[test]
    fn lambda_zero_qr_makes_coverage_irrelevant_to_attack() {
        // With λ=0 the attack distribution is uniform regardless of x; the
        // optimal response then just maximizes Σ Ud_i(x_i)/T.
        let game = GameGenerator::new(42).generate(4, 1.0);
        let model = Qr::new(0.0);
        let x = solve_point_qr(&game, &model, 50, 1e-4).unwrap();
        // Greedy check: coverage should concentrate on targets with the
        // largest Ud slope (Rd − Pd).
        let slopes: Vec<f64> = game
            .targets()
            .iter()
            .map(|t| t.def_reward - t.def_penalty)
            .collect();
        let best = slopes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(x[best] > 0.9, "x = {x:?}, slopes = {slopes:?}");
    }

    #[test]
    fn midpoint_solution_is_feasible_and_deterministic() {
        let game = GameGenerator::new(43).generate(6, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let a = solve_midpoint(&game, &model, 40, 1e-3).unwrap();
        let b = solve_midpoint(&game, &model, 40, 1e-3).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().sum::<f64>() <= game.resources() + 1e-6);
    }
}
