//! Behavior-free robust maximin.
//!
//! Assume nothing about the attacker except that he attacks where it
//! hurts most: maximize `min_i Ud_i(x_i)`. The optimum is a water-fill:
//! for a utility level `t`, the cheapest coverage achieving
//! `Ud_i(x_i) ≥ t` everywhere is `x_i(t) = clamp((t − Pd_i)/(Rd_i − Pd_i), 0, 1)`,
//! and `Σ_i x_i(t)` is nondecreasing in `t`, so the largest affordable
//! `t` is found by bisection.

use cubis_game::SecurityGame;

/// Maximize the minimum per-target defender utility subject to the
/// resource budget. Returns the water-filling coverage.
pub fn solve_maximin(game: &SecurityGame) -> Vec<f64> {
    let t_count = game.num_targets();
    let coverage_for = |level: f64| -> Vec<f64> {
        (0..t_count)
            .map(|i| game.target(i).coverage_for_defender_utility(level).clamp(0.0, 1.0))
            .collect()
    };
    let total = |level: f64| -> f64 { coverage_for(level).iter().sum() };

    // Bisect on the utility level. Range: worst penalty (free) up to the
    // best achievable reward (can cost more than the budget).
    let mut lo = game.min_defender_utility();
    let mut hi = game.max_defender_utility();
    // The level is capped by the smallest reward: beyond min_i Rd_i some
    // target cannot reach the level even with full coverage.
    let cap = game
        .targets()
        .iter()
        .map(|t| t.def_reward)
        .fold(f64::INFINITY, f64::min);
    hi = hi.min(cap);
    if total(hi) <= game.resources() {
        return distribute_slack(game, coverage_for(hi));
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if total(mid) <= game.resources() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    distribute_slack(game, coverage_for(lo))
}

/// Spend any leftover budget greedily (extra coverage never hurts the
/// worst case), keeping the vector feasible.
fn distribute_slack(game: &SecurityGame, mut x: Vec<f64>) -> Vec<f64> {
    let mut slack = game.resources() - x.iter().sum::<f64>();
    if slack <= 0.0 {
        return x;
    }
    for xi in x.iter_mut() {
        let room = 1.0 - *xi;
        let add = room.min(slack);
        *xi += add;
        slack -= add;
        if slack <= 1e-15 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    #[test]
    fn equalizes_utilities_when_budget_binds() {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -5.0, 5.0, -5.0),
                TargetPayoffs::new(10.0, -10.0, 10.0, -10.0),
            ],
            1.0,
        );
        let x = solve_maximin(&game);
        let u0 = game.defender_utility(0, x[0]);
        let u1 = game.defender_utility(1, x[1]);
        assert!((u0 - u1).abs() < 1e-6, "u0={u0} u1={u1}");
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_strategy_has_better_min_utility() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let game = GameGenerator::new(8).generate(5, 2.0);
        let x = solve_maximin(&game);
        let min_u = |xs: &[f64]| {
            (0..5)
                .map(|i| game.defender_utility(i, xs[i]))
                .fold(f64::INFINITY, f64::min)
        };
        let base = min_u(&x);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let raw: Vec<f64> = (0..5).map(|_| rng.gen_range(-0.5..1.5)).collect();
            let cand = cubis_game::project_capped_simplex(&raw, 2.0);
            assert!(min_u(&cand) <= base + 1e-6);
        }
    }

    #[test]
    fn abundant_budget_hits_reward_cap() {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(3.0, -1.0, 1.0, -3.0),
                TargetPayoffs::new(6.0, -2.0, 2.0, -6.0),
            ],
            2.0,
        );
        // Budget 2 of 2: full coverage reaches every reward.
        let x = solve_maximin(&game);
        let min_u = (0..2)
            .map(|i| game.defender_utility(i, x[i]))
            .fold(f64::INFINITY, f64::min);
        assert!((min_u - 3.0).abs() < 1e-6, "min utility {min_u}");
    }

    #[test]
    fn output_is_feasible() {
        let game = GameGenerator::new(21).generate(9, 4.0);
        let x = solve_maximin(&game);
        assert!(x.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        assert!(x.iter().sum::<f64>() <= game.resources() + 1e-6);
    }
}
