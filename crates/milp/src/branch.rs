//! Sequential branch-and-bound core.

use crate::MilpProblem;
use cubis_lp::{Basis, LpOptions, LpSolution, LpStatus, Sense, SimplexEngine};
use cubis_trace::{BbSolveEvent, Event};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::Instant;

/// Branching variable selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// Fractional part closest to 0.5 wins (ties → lowest index).
    MostFractional,
    /// Lowest-index fractional variable (Bland-flavored, deterministic).
    FirstFractional,
}

/// Options for [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Tolerances for the underlying LP solves.
    pub lp: LpOptions,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Absolute optimality gap at which the search stops.
    pub gap_abs: f64,
    /// Relative optimality gap at which the search stops.
    pub gap_rel: f64,
    /// Node budget (pruned search reports [`MilpStatus::NodeLimit`] if hit
    /// before the gap closes).
    pub max_nodes: usize,
    /// Branching rule.
    pub branching: Branching,
    /// Per-variable branching priority (higher first); indexed by variable
    /// index. Empty = uniform.
    pub priorities: Vec<i32>,
    /// Optional warm-start incumbent: a feasible point in variable order.
    /// The solver verifies feasibility before trusting it.
    pub warm_start: Option<Vec<f64>>,
    /// Early sign/threshold termination: stop as soon as an incumbent
    /// reaches this objective (in the problem sense) or the global bound
    /// proves no solution can. Used by feasibility-style callers (the
    /// CUBIS binary search only consumes the sign of the optimum).
    pub target: Option<f64>,
    /// Externally proven bound on the optimum (in the problem sense): no
    /// feasible point is better than this value. The search clamps every
    /// node's parent bound against it, so pruning — in particular the
    /// `target` certificate — can fire from node zero. Supplying an
    /// *invalid* hint (tighter than the true optimum) silently turns the
    /// solve into a heuristic; callers must only pass proven bounds
    /// (CUBIS derives them from a Lipschitz transfer of the previous
    /// binary-search probe's certificate). A NaN hint is ignored.
    pub bound_hint: Option<f64>,
    /// Run the LP-rounding heuristic at the root node.
    pub root_heuristic: bool,
    /// Warm-restart each child node's LP from its parent's optimal
    /// basis (dual-simplex repair in the [`SimplexEngine`]) instead of
    /// solving every node from scratch. On by default — this is the
    /// branch-and-bound hot-path optimization; disable to force cold
    /// node solves (debugging/benchmark baseline). Incumbents are
    /// bit-identical either way: the engine extracts every solution
    /// from a freshly refactorized basis.
    pub reuse_basis: bool,
    /// Number of rayon worker tasks (1 = fully sequential/deterministic).
    pub threads: usize,
    /// Observability sink. Disabled by default; when enabled,
    /// [`solve_milp`] emits a `bb.solve` span, `bb.solves`/`bb.nodes`
    /// counters and one structured branch-and-bound summary event per
    /// call (nodes, LP iterations, incumbent improvements, per-worker
    /// node counts). Unless `lp.recorder` was set separately, the
    /// recorder also propagates to the node LP solves.
    pub recorder: cubis_trace::SharedRecorder,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            lp: LpOptions::default(),
            int_tol: 1e-6,
            gap_abs: 1e-8,
            gap_rel: 1e-9,
            max_nodes: 1_000_000,
            branching: Branching::MostFractional,
            priorities: Vec::new(),
            warm_start: None,
            target: None,
            bound_hint: None,
            root_heuristic: true,
            reuse_basis: true,
            threads: 1,
            recorder: cubis_trace::SharedRecorder::null(),
        }
    }
}

/// Per-solve observability scratch shared between the sequential and
/// parallel search loops. Only allocated when a recorder is attached.
#[derive(Default)]
pub(crate) struct BbTrace {
    /// Times the incumbent strictly improved during the search
    /// (warm-start seeding not counted).
    pub incumbent_updates: AtomicUsize,
    /// Nodes processed per parallel worker; left empty by the
    /// sequential loop.
    pub worker_nodes: parking_lot::Mutex<Vec<u64>>,
}

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal within the configured gap.
    Optimal,
    /// No integer-feasible point exists.
    Infeasible,
    /// The LP relaxation (and hence the MILP, if feasible) is unbounded.
    Unbounded,
    /// Node budget exhausted; `objective`/`x` hold the best incumbent if
    /// one was found.
    NodeLimit,
    /// Early-termination mode only (`options.target`): the search proved
    /// no solution reaches the target before finding any incumbent;
    /// `bound` carries the certificate.
    TargetUnreachable,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Termination status.
    pub status: MilpStatus,
    /// Objective of the incumbent (NaN if none).
    pub objective: f64,
    /// Incumbent point in variable order (NaN-filled if none).
    pub x: Vec<f64>,
    /// Number of branch-and-bound nodes processed.
    pub nodes: usize,
    /// Total simplex iterations across all node LPs.
    pub lp_iterations: usize,
    /// Final proven bound (best-possible objective), in the problem sense.
    pub bound: f64,
}

/// Hard failures (numerical breakdown in a node LP).
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// The simplex reported numerical breakdown.
    Lp(cubis_lp::LpError),
    /// A node LP hit its iteration limit; results would be unreliable.
    LpIterationLimit,
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Lp(e) => write!(f, "LP failure inside branch-and-bound: {e}"),
            MilpError::LpIterationLimit => write!(f, "node LP hit its iteration limit"),
        }
    }
}

impl std::error::Error for MilpError {}

impl From<cubis_lp::LpError> for MilpError {
    fn from(e: cubis_lp::LpError) -> Self {
        MilpError::Lp(e)
    }
}

/// A live search node: bound overrides along the path from the root.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// (variable index, lower, upper) tightenings.
    pub fixes: Vec<(usize, f64, f64)>,
    /// Parent LP bound (in maximize-normalized space).
    pub score: f64,
    pub depth: usize,
    /// Optimal basis of the parent's LP relaxation; seeds the
    /// dual-simplex warm restart of this node's solve. Shared between
    /// siblings (both children differ from the parent by one bound).
    pub basis: Option<Arc<Basis>>,
}

/// Heap ordering: best bound first, then deepest (plunge).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.score.partial_cmp(&other.score) {
            Some(Ordering::Equal) | None => self.depth.cmp(&other.depth),
            Some(ord) => ord,
        }
    }
}

/// Normalize objectives so "larger is better" regardless of sense.
#[inline]
pub(crate) fn normalize(sense: Sense, v: f64) -> f64 {
    match sense {
        Sense::Maximize => v,
        Sense::Minimize => -v,
    }
}

pub(crate) struct NodeEval {
    pub lp_iterations: usize,
    pub outcome: NodeOutcome,
}

pub(crate) enum NodeOutcome {
    Pruned,
    Infeasible,
    Unbounded,
    /// LP optimum is integral: candidate incumbent (objective, x).
    Incumbent(f64, Vec<f64>),
    /// Fractional: children to enqueue.
    Branched(Node, Node),
}

/// Solve one node: apply fixes, run the LP, decide what happens next.
///
/// `cutoff` is the current incumbent score (maximize-normalized) used
/// for pruning; pass `f64::NEG_INFINITY` when there is no incumbent.
/// The node's bound tightenings go straight into
/// [`SimplexEngine::solve_with`] (no per-node problem clone), and when
/// `opts.reuse_basis` is set the parent's optimal basis seeds a
/// dual-simplex warm restart.
pub(crate) fn evaluate_node(
    engine: &mut SimplexEngine,
    prob: &MilpProblem,
    opts: &MilpOptions,
    node: &Node,
    cutoff: f64,
) -> Result<NodeEval, MilpError> {
    let sense = prob.lp.sense();
    let warm = if opts.reuse_basis { node.basis.as_deref() } else { None };
    let out = engine.solve_with(&node.fixes, warm, &opts.lp)?;
    let sol = out.solution;
    let eval = |outcome| NodeEval { lp_iterations: sol.iterations, outcome };
    match sol.status {
        LpStatus::Infeasible => return Ok(eval(NodeOutcome::Infeasible)),
        LpStatus::Unbounded => return Ok(eval(NodeOutcome::Unbounded)),
        LpStatus::IterationLimit => return Err(MilpError::LpIterationLimit),
        LpStatus::Optimal => {}
    }
    let score = normalize(sense, sol.objective);
    if score <= cutoff + opts.gap_abs {
        return Ok(eval(NodeOutcome::Pruned));
    }
    match pick_branch_var(prob, opts, &sol) {
        None => {
            // Integral LP optimum — snap integer vars exactly.
            let mut x = sol.x.clone();
            for v in &prob.integers {
                x[v.index()] = x[v.index()].round();
            }
            let obj = prob.lp.objective_value(&x);
            Ok(eval(NodeOutcome::Incumbent(obj, x)))
        }
        Some(vi) => {
            let xv = sol.x[vi];
            let floor = xv.floor();
            let ceil = floor + 1.0;
            let basis = out.basis.map(Arc::new);
            let down = Node {
                fixes: with_fix(&node.fixes, (vi, f64::NEG_INFINITY, floor)),
                score,
                depth: node.depth + 1,
                basis: basis.clone(),
            };
            let up = Node {
                fixes: with_fix(&node.fixes, (vi, ceil, f64::INFINITY)),
                score,
                depth: node.depth + 1,
                basis,
            };
            Ok(eval(NodeOutcome::Branched(down, up)))
        }
    }
}

fn with_fix(fixes: &[(usize, f64, f64)], add: (usize, f64, f64)) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::with_capacity(fixes.len() + 1);
    out.extend_from_slice(fixes);
    out.push(add);
    out
}

/// Choose the branching variable, or `None` if the point is integral.
fn pick_branch_var(prob: &MilpProblem, opts: &MilpOptions, sol: &LpSolution) -> Option<usize> {
    let mut best: Option<(usize, f64, i32)> = None; // (index, fractionality score, priority)
    for v in &prob.integers {
        let vi = v.index();
        let xv = sol.x[vi];
        let frac = xv - xv.floor();
        let dist = frac.min(1.0 - frac);
        if dist <= opts.int_tol {
            continue;
        }
        let prio = opts.priorities.get(vi).copied().unwrap_or(0);
        let score = match opts.branching {
            Branching::MostFractional => dist,
            Branching::FirstFractional => -(vi as f64),
        };
        let better = match best {
            None => true,
            Some((_, bscore, bprio)) => {
                prio > bprio || (prio == bprio && score > bscore)
            }
        };
        if better {
            best = Some((vi, score, prio));
        }
    }
    best.map(|(vi, _, _)| vi)
}

/// LP-rounding heuristic: round integers in the relaxation optimum, fix
/// them, re-solve the continuous rest, and check feasibility.
fn rounding_heuristic(
    engine: &mut SimplexEngine,
    prob: &MilpProblem,
    opts: &MilpOptions,
    relax: &LpSolution,
) -> Option<(f64, Vec<f64>)> {
    let mut tighten = Vec::with_capacity(prob.integers.len());
    for v in &prob.integers {
        let r = relax.x[v.index()].round();
        let (l, u) = prob.lp.var_bounds(*v);
        let r = r.clamp(l, u).round();
        if r < l - 1e-12 || r > u + 1e-12 {
            return None;
        }
        tighten.push((v.index(), r, r));
    }
    let sol = engine.solve_with(&tighten, None, &opts.lp).ok()?.solution;
    if sol.status != LpStatus::Optimal {
        return None;
    }
    if prob.max_violation(&sol.x) > 1e-6 {
        return None;
    }
    Some((sol.objective, sol.x.clone()))
}

/// Solve a MILP by branch-and-bound. See the crate docs for the search
/// strategy. With `opts.threads > 1` the node loop runs on a rayon pool
/// (results remain exact; node order becomes nondeterministic).
pub fn solve_milp(prob: &MilpProblem, opts: &MilpOptions) -> Result<MilpSolution, MilpError> {
    if !opts.recorder.enabled() {
        return dispatch(prob, opts, None);
    }
    // Propagate the recorder into the node LPs unless the caller
    // already routed them elsewhere.
    let mut opts = opts.clone();
    if !opts.lp.recorder.enabled() {
        opts.lp.recorder = opts.recorder.clone();
    }
    let trace = BbTrace::default();
    let _span = opts.recorder.span("bb.solve");
    let t0 = Instant::now();
    let out = dispatch(prob, &opts, Some(&trace));
    if let Ok(sol) = &out {
        opts.recorder.counter("bb.solves", 1);
        opts.recorder.counter("bb.nodes", sol.nodes as u64);
        opts.recorder.record(Event::BbSolve(BbSolveEvent {
            nodes: sol.nodes,
            lp_iterations: sol.lp_iterations,
            incumbent_updates: trace
                .incumbent_updates
                .load(std::sync::atomic::Ordering::Acquire),
            worker_nodes: std::mem::take(&mut *trace.worker_nodes.lock()),
            dur_ns: t0.elapsed().as_nanos() as u64,
        }));
    }
    out
}

fn dispatch(
    prob: &MilpProblem,
    opts: &MilpOptions,
    trace: Option<&BbTrace>,
) -> Result<MilpSolution, MilpError> {
    if opts.threads > 1 {
        return crate::parallel::solve_parallel(prob, opts, trace);
    }
    solve_sequential(prob, opts, trace)
}

fn solve_sequential(
    prob: &MilpProblem,
    opts: &MilpOptions,
    trace: Option<&BbTrace>,
) -> Result<MilpSolution, MilpError> {
    let sense = prob.lp.sense();
    // One engine for the whole search: canonical form built once, node
    // solves reuse its storage (and the live factorization when a child
    // plunges straight from its parent).
    let mut engine = SimplexEngine::new(&prob.lp);

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut inc_score = f64::NEG_INFINITY;
    if let Some(ws) = &opts.warm_start {
        if prob.max_violation(ws) <= 1e-7 {
            let obj = prob.lp.objective_value(ws);
            inc_score = normalize(sense, obj);
            incumbent = Some((obj, ws.clone()));
        }
    }

    let root = Node { fixes: Vec::new(), score: f64::INFINITY, depth: 0, basis: None };
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    heap.push(root);

    let mut nodes = 0usize;
    let mut lp_iters = 0usize;
    let mut best_bound_seen = f64::NEG_INFINITY; // max-normalized proven bound
    let mut first_node = true;
    let mut hit_node_limit = false;
    let target_score = opts.target.map(|t| normalize(sense, t));
    let hint_score = opts.bound_hint.map(|b| normalize(sense, b));

    if let (Some(ts), true) = (target_score, inc_score > f64::NEG_INFINITY) {
        if inc_score >= ts {
            // Warm start already certifies the target.
            return finish(prob, sense, incumbent, inc_score, inc_score, 0, 0, false, true);
        }
    }

    while let Some(mut node) = heap.pop() {
        // An externally proven bound caps every parent bound, letting
        // the target/gap certificates below fire immediately — on the
        // root node too (its +∞ score clamps straight to the hint).
        // NaN hints fail the `<` and are ignored.
        if let Some(h) = hint_score {
            if h < node.score {
                node.score = h;
            }
        }
        if let Some(ts) = target_score {
            // Bound below target: no solution can reach it; the caller
            // only needs this certificate.
            if node.score < ts {
                best_bound_seen = best_bound_seen.max(node.score);
                break;
            }
        }
        // The heap is bound-ordered: if the best remaining bound cannot
        // beat the incumbent, the search is over.
        if node.score <= inc_score + gap_threshold(opts, inc_score) {
            best_bound_seen = best_bound_seen.max(inc_score);
            break;
        }
        if nodes >= opts.max_nodes {
            hit_node_limit = true;
            best_bound_seen = best_bound_seen.max(node.score);
            break;
        }
        nodes += 1;
        let eval = evaluate_node(&mut engine, prob, opts, &node, inc_score)?;
        lp_iters += eval.lp_iterations;
        match eval.outcome {
            NodeOutcome::Pruned | NodeOutcome::Infeasible => {}
            NodeOutcome::Unbounded => {
                if first_node {
                    return Ok(MilpSolution {
                        status: MilpStatus::Unbounded,
                        objective: f64::NAN,
                        x: vec![f64::NAN; prob.lp.num_vars()],
                        nodes,
                        lp_iterations: lp_iters,
                        bound: f64::NAN,
                    });
                }
                // A child LP cannot be unbounded if the root wasn't; treat
                // defensively as an un-prunable region we cannot handle.
                return Err(MilpError::LpIterationLimit);
            }
            NodeOutcome::Incumbent(obj, x) => {
                let score = normalize(sense, obj);
                if score > inc_score {
                    inc_score = score;
                    incumbent = Some((obj, x));
                    if let Some(t) = trace {
                        t.incumbent_updates
                            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                    }
                }
                if target_score.is_some_and(|ts| inc_score >= ts) {
                    best_bound_seen = best_bound_seen.max(inc_score);
                    break;
                }
            }
            NodeOutcome::Branched(down, up) => {
                if first_node && opts.root_heuristic {
                    // Root LP solution is embedded in the children's score;
                    // re-derive a heuristic incumbent from a fresh solve.
                    let relax = solve_root_relaxation(&mut engine, opts)?;
                    if let Some(r) = relax {
                        lp_iters += r.iterations;
                        if let Some((obj, x)) = rounding_heuristic(&mut engine, prob, opts, &r) {
                            let score = normalize(sense, obj);
                            if score > inc_score {
                                inc_score = score;
                                incumbent = Some((obj, x));
                                if let Some(t) = trace {
                                    t.incumbent_updates
                                        .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                                }
                            }
                        }
                        if target_score.is_some_and(|ts| inc_score >= ts) {
                            best_bound_seen = best_bound_seen.max(inc_score);
                            break;
                        }
                    }
                }
                if down.score > inc_score + opts.gap_abs {
                    heap.push(down);
                } else {
                    best_bound_seen = best_bound_seen.max(down.score);
                }
                if up.score > inc_score + opts.gap_abs {
                    heap.push(up);
                } else {
                    best_bound_seen = best_bound_seen.max(up.score);
                }
            }
        }
        first_node = false;
    }

    finish(
        prob,
        sense,
        incumbent,
        inc_score,
        best_bound_seen,
        nodes,
        lp_iters,
        hit_node_limit,
        opts.target.is_some(),
    )
}

pub(crate) fn gap_threshold(opts: &MilpOptions, inc_score: f64) -> f64 {
    if inc_score.is_finite() {
        opts.gap_abs.max(opts.gap_rel * inc_score.abs())
    } else {
        opts.gap_abs
    }
}

fn solve_root_relaxation(
    engine: &mut SimplexEngine,
    opts: &MilpOptions,
) -> Result<Option<LpSolution>, MilpError> {
    let sol = engine.solve_with(&[], None, &opts.lp)?.solution;
    Ok((sol.status == LpStatus::Optimal).then_some(sol))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    prob: &MilpProblem,
    sense: Sense,
    incumbent: Option<(f64, Vec<f64>)>,
    inc_score: f64,
    best_bound_seen: f64,
    nodes: usize,
    lp_iterations: usize,
    hit_node_limit: bool,
    target_mode: bool,
) -> Result<MilpSolution, MilpError> {
    let bound_in_sense = |s: f64| match sense {
        Sense::Maximize => s,
        Sense::Minimize => -s,
    };
    match incumbent {
        Some((obj, x)) => Ok(MilpSolution {
            status: if hit_node_limit { MilpStatus::NodeLimit } else { MilpStatus::Optimal },
            objective: obj,
            x,
            nodes,
            lp_iterations,
            bound: bound_in_sense(best_bound_seen.max(inc_score)),
        }),
        None => {
            // With a target set, "no incumbent" normally means the bound
            // certificate fired before any integral point was found — the
            // instance itself may well be feasible.
            let status = if hit_node_limit {
                MilpStatus::NodeLimit
            } else if target_mode && best_bound_seen.is_finite() {
                MilpStatus::TargetUnreachable
            } else {
                MilpStatus::Infeasible
            };
            Ok(MilpSolution {
                status,
                objective: f64::NAN,
                x: vec![f64::NAN; prob.lp.num_vars()],
                nodes,
                lp_iterations,
                bound: if status == MilpStatus::TargetUnreachable {
                    bound_in_sense(best_bound_seen)
                } else {
                    f64::NAN
                },
            })
        }
    }
}

#[cfg(test)]
mod hint_tests {
    use super::*;
    use cubis_lp::{LpProblem, Relation};

    /// max x + y, x,y ∈ {0,1}, x + y ≤ 1.5 → optimum 1.
    fn knapsack() -> MilpProblem {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, 1.0, 1.0);
        let y = lp.add_var("y", 0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
        MilpProblem { lp, integers: vec![x, y] }
    }

    #[test]
    fn valid_hint_preserves_the_optimum() {
        let prob = knapsack();
        let plain = solve_milp(&prob, &MilpOptions::default()).unwrap();
        for threads in [1usize, 3] {
            let opts =
                MilpOptions { bound_hint: Some(1.0), threads, ..Default::default() };
            let hinted = solve_milp(&prob, &opts).unwrap();
            assert_eq!(hinted.status, MilpStatus::Optimal);
            assert!(
                (hinted.objective - plain.objective).abs() < 1e-9,
                "threads={threads}: {} vs {}",
                hinted.objective,
                plain.objective
            );
        }
    }

    #[test]
    fn hint_below_target_certifies_unreachable_at_node_zero() {
        let prob = knapsack();
        for threads in [1usize, 3] {
            let opts = MilpOptions {
                target: Some(1.5),
                bound_hint: Some(1.2),
                threads,
                ..Default::default()
            };
            let sol = solve_milp(&prob, &opts).unwrap();
            assert_eq!(sol.status, MilpStatus::TargetUnreachable, "threads={threads}");
            assert_eq!(sol.nodes, 0, "threads={threads}: pruning must fire before any LP");
            assert!(sol.bound <= 1.2 + 1e-12, "threads={threads}: bound {}", sol.bound);
        }
    }

    #[test]
    fn loose_and_nan_hints_are_inert() {
        let prob = knapsack();
        let plain = solve_milp(&prob, &MilpOptions::default()).unwrap();
        for hint in [f64::INFINITY, 50.0, f64::NAN] {
            let opts = MilpOptions { bound_hint: Some(hint), ..Default::default() };
            let sol = solve_milp(&prob, &opts).unwrap();
            assert_eq!(sol.status, MilpStatus::Optimal, "hint={hint}");
            assert!((sol.objective - plain.objective).abs() < 1e-9, "hint={hint}");
            assert_eq!(sol.nodes, plain.nodes, "hint={hint}");
        }
    }

    #[test]
    fn hint_tightens_the_reported_bound() {
        // Fractional LP optimum is 1.5; a proven hint of 1.25 must cap
        // the root score so the gap certificate fires earlier, while
        // the incumbent (1.0) is still found and proven optimal.
        let prob = knapsack();
        let opts = MilpOptions {
            bound_hint: Some(1.25),
            warm_start: Some(vec![1.0, 0.0]),
            ..Default::default()
        };
        let sol = solve_milp(&prob, &opts).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-9);
        assert!(sol.bound <= 1.25 + 1e-12, "bound {}", sol.bound);
    }
}
