//! Solver output types.

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints are inconsistent.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status. Values below are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal objective value in the problem's own sense.
    pub objective: f64,
    /// Primal values in variable order.
    pub x: Vec<f64>,
    /// Dual values (one per constraint), in the problem's own sense:
    /// for a maximization, `dual[i]` is the marginal objective gain per
    /// unit of slack added to row `i`.
    pub duals: Vec<f64>,
    /// Simplex iterations used across both phases.
    pub iterations: usize,
    /// Basis refactorizations performed (numerical-drift repairs; see
    /// `Tableau::refactorize` in the `simplex` module). A high count
    /// relative to `iterations` signals an ill-conditioned instance.
    pub refactorizations: usize,
}

impl LpSolution {
    /// Convenience accessor: value of a variable.
    pub fn value(&self, v: crate::model::VarId) -> f64 {
        self.x[v.index()]
    }
}
