//! Uncertainty attribution: which target's behavioral uncertainty hurts
//! the defender most?
//!
//! The paper ties interval width to data availability; this module
//! answers the planning question that follows — *where to spend the
//! next data-collection effort*. For a strategy `x`, the **value of
//! information** at target `i` is the worst-case utility gain from
//! collapsing that one target's interval `[L_i, U_i]` to its (log-)
//! midpoint while all other targets stay uncertain:
//!
//! ```text
//! VOI_i(x) = worst-case(x | target i resolved) − worst-case(x)
//! ```
//!
//! Collapsing a constraint set can only shrink the adversary's feasible
//! region, so `VOI_i ≥ 0` always; ranking targets by it gives a
//! data-collection priority list (used by the `uncertainty_audit`
//! example).

use crate::problem::RobustProblem;
use cubis_behavior::IntervalChoiceModel;
use cubis_game::SecurityGame;

/// View of a model with one target's interval collapsed to its
/// log-midpoint (the geometric mean of `L` and `U`).
struct CollapseTarget<'m, M> {
    inner: &'m M,
    target: usize,
}

impl<M: IntervalChoiceModel> IntervalChoiceModel for CollapseTarget<'_, M> {
    fn log_bounds(&self, game: &SecurityGame, i: usize, x_i: f64) -> (f64, f64) {
        let (lo, hi) = self.inner.log_bounds(game, i, x_i);
        if i == self.target {
            let mid = 0.5 * (lo + hi);
            (mid, mid)
        } else {
            (lo, hi)
        }
    }
}

/// Per-target value of information for strategy `x` (see module docs).
///
/// # Panics
/// Panics if `x.len()` mismatches the game.
pub fn value_of_information<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    x: &[f64],
) -> Vec<f64> {
    let t = p.num_targets();
    assert_eq!(x.len(), t, "value_of_information: coverage length mismatch");
    let base = p.worst_case(x).utility;
    (0..t)
        .map(|i| {
            let collapsed = CollapseTarget { inner: p.model, target: i };
            let cp = RobustProblem::new(p.game, &collapsed);
            (cp.worst_case(x).utility - base).max(0.0)
        })
        .collect()
}

/// Targets ordered by decreasing value of information (ties keep index
/// order). The first entries are where extra behavioral data pays most.
pub fn rank_targets<M: IntervalChoiceModel>(p: &RobustProblem<'_, M>, x: &[f64]) -> Vec<usize> {
    let voi = value_of_information(p, x);
    let mut order: Vec<usize> = (0..voi.len()).collect();
    order.sort_by(|&a, &b| voi[b].total_cmp(&voi[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, Interval, SuqrUncertainty, UncertainSuqr};
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    fn fixture() -> (SecurityGame, UncertainSuqr) {
        let game = GameGenerator::new(300).generate(5, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            1.0,
            BoundConvention::ExactInterval,
        );
        (game, model)
    }

    #[test]
    fn voi_is_nonnegative() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = cubis_game::uniform_coverage(5, 2.0);
        for (i, v) in value_of_information(&p, &x).iter().enumerate() {
            assert!(*v >= 0.0, "target {i}: VOI {v}");
        }
    }

    #[test]
    fn resolving_a_degenerate_interval_is_worthless() {
        // Build a model where target 0 already has a point interval.
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(4.0, -4.0, 4.0, -4.0),
                TargetPayoffs::new(5.0, -5.0, 5.0, -5.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::new(
            SuqrUncertainty {
                w1: Interval::point(-4.0),
                w2: Interval::point(0.7),
                w3: Interval::point(0.5),
            },
            vec![
                (Interval::point(4.0), Interval::point(-4.0)), // resolved
                (Interval::new(3.0, 7.0), Interval::new(-7.0, -3.0)), // uncertain
            ],
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        // Asymmetric coverage so the per-target defender utilities
        // differ (with equal utilities the adversary's choice — and
        // hence any information — is worthless by construction).
        let voi = value_of_information(&p, &[0.7, 0.3]);
        assert!(voi[0] < 1e-9, "resolved target has VOI {}", voi[0]);
        assert!(voi[1] > 0.0, "uncertain target has VOI {}", voi[1]);
    }

    #[test]
    fn ranking_puts_widest_intervals_first_on_symmetric_games() {
        let game = SecurityGame::new(
            vec![TargetPayoffs::new(4.0, -4.0, 4.0, -4.0); 3],
            1.5,
        );
        // Same payoff intervals except target 2 has much wider reward
        // uncertainty.
        let model = UncertainSuqr::new(
            SuqrUncertainty {
                w1: Interval::point(-4.0),
                w2: Interval::point(0.7),
                w3: Interval::point(0.5),
            },
            vec![
                (Interval::new(3.5, 4.5), Interval::point(-4.0)),
                (Interval::new(3.5, 4.5), Interval::point(-4.0)),
                (Interval::new(1.0, 7.0), Interval::point(-4.0)),
            ],
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let order = rank_targets(&p, &[0.6, 0.5, 0.4]);
        assert_eq!(order[0], 2, "order {order:?}");
    }

    #[test]
    fn rank_is_a_permutation() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let mut order = rank_targets(&p, &cubis_game::uniform_coverage(5, 2.0));
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
