//! **A1 — inner-solver ablation.**
//!
//! The same binary search driven by three inner maximizers must land on
//! the same robust value (within the approximation tolerances); what
//! differs is cost. This validates that our MILP route (the paper's)
//! and the DP route are interchangeable, and quantifies the generic
//! non-convex route's inefficiency.

use super::{robust_value, Profile};
use crate::fixtures::workload;
use crate::metrics::{mean, timed};
use crate::report::Report;
use cubis_core::SolveError;

/// Game sizes ablated.
pub const TARGETS: [usize; 3] = [4, 8, 12];

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let reps = match profile {
        Profile::Quick => 3,
        Profile::Full => 8,
    };
    let mut r = Report::new(
        "A1 — inner-backend ablation: same value, different cost",
        vec![
            "targets",
            "wc MILP(K=10)",
            "wc DP(100)",
            "wc PG",
            "secs MILP",
            "secs DP",
            "secs PG",
        ],
    );
    r.note(format!(
        "δ = 0.5, ε = 1e-2, mean over {reps} seeds; wc columns are exact \
         worst-case utilities of each backend's strategy — they should agree \
         to within the O(ε + 1/K) tolerance."
    ));
    for &t in &TARGETS {
        let res = (t as f64 / 4.0).ceil();
        let (mut w_m, mut w_d, mut w_p) = (Vec::new(), Vec::new(), Vec::new());
        let (mut s_m, mut s_d, mut s_p) = (Vec::new(), Vec::new(), Vec::new());
        for seed in 0..reps {
            let (game, model) = workload(seed, t, res, 0.5);
            let p = cubis_core::RobustProblem::new(&game, &model);
            let (m, sm) = timed(|| super::cubis_milp(10, 1e-2).solve(&p));
            let m = m?;
            let (d, sd) = timed(|| super::cubis_dp(100, 1e-2).solve(&p));
            let d = d?;
            let (px, sp) = timed(|| {
                cubis_solvers::solve_nonconvex(
                    &game,
                    &model,
                    &cubis_solvers::NonconvexOptions {
                        starts: 8,
                        max_iters: 120,
                        seed,
                        parallel: false,
                        ..Default::default()
                    },
                )
            });
            w_m.push(m.worst_case);
            w_d.push(d.worst_case);
            w_p.push(robust_value(&game, &model, &px));
            s_m.push(sm);
            s_d.push(sd);
            s_p.push(sp);
        }
        r.row(vec![
            format!("{t}"),
            format!("{:+.3}", mean(&w_m)),
            format!("{:+.3}", mean(&w_d)),
            format!("{:+.3}", mean(&w_p)),
            format!("{:.3}", mean(&s_m)),
            format!("{:.3}", mean(&s_d)),
            format!("{:.3}", mean(&s_p)),
        ]);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_within_tolerance() {
        let (game, model) = workload(7, 6, 2.0, 0.5);
        let p = cubis_core::RobustProblem::new(&game, &model);
        let m = super::super::cubis_milp(10, 1e-2).solve(&p).unwrap();
        let d = super::super::cubis_dp(100, 1e-2).solve(&p).unwrap();
        assert!(
            (m.worst_case - d.worst_case).abs() < 0.15,
            "milp {} vs dp {}",
            m.worst_case,
            d.worst_case
        );
    }
}
