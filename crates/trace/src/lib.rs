//! Zero-dependency solver observability for the CUBIS stack.
//!
//! The solver crates (`cubis-core`, `cubis-lp`, `cubis-milp`,
//! `cubis-solvers`) accept a [`SharedRecorder`] in their options
//! structs and report:
//!
//! - **spans** — named timed regions (`cubis.solve`, `cubis.inner`,
//!   `lp.solve`, `bb.solve`, ...) emitted via RAII guards,
//! - **counters** — monotonic work counts (`lp.pivots`,
//!   `lp.refactorizations`, `bb.nodes`, ...),
//! - **structured solve events** — binary-search steps with their
//!   `[lb, ub]` interval, inner-solver calls with backend/`K`/node
//!   counts, branch-and-bound summaries with per-worker utilization,
//!   and a final solve summary.
//!
//! Everything funnels through the [`Recorder`] trait. The default
//! handle is a no-op ([`NullRecorder`] semantics): instrumentation
//! sites check [`SharedRecorder::enabled`] before constructing an
//! event, so the hot path pays one branch when tracing is off.
//!
//! # Example
//!
//! Capture events into a [`Journal`] and export it as JSON:
//!
//! ```
//! use std::sync::Arc;
//! use cubis_trace::{Journal, JournalRecorder, SharedRecorder};
//!
//! let journal = Arc::new(JournalRecorder::new());
//! let rec = SharedRecorder::new(journal.clone());
//!
//! // Solver crates do this internally once a recorder is attached:
//! {
//!     let _span = rec.span("cubis.solve");
//!     rec.counter("lp.pivots", 17);
//! }
//!
//! let snapshot = journal.snapshot();
//! assert_eq!(snapshot.counter_totals()["lp.pivots"], 17);
//!
//! // Round-trip through the on-disk format read by
//! // `cubis-xtask trace-report`.
//! let restored = Journal::from_json(&snapshot.to_json()).unwrap();
//! assert_eq!(restored, snapshot);
//! ```
//!
//! This crate deliberately has no dependencies (including serde): the
//! journal codec in [`json`] is self-contained, so attaching tracing
//! never changes the solver crates' dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
pub mod event;
mod journal;
pub mod json;
pub mod names;
mod recorder;

pub use counters::{CounterSetRecorder, SpanAgg};
pub use event::{
    BbSolveEvent, BinaryStepEvent, Event, InnerSolveEvent, SolveSummaryEvent, TimedEvent,
};
pub use journal::{Journal, JournalError, JournalRecorder, SpanTotal, FORMAT_VERSION};
pub use recorder::{NullRecorder, Recorder, SharedRecorder, SpanGuard};
