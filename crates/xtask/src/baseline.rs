//! Finding fingerprints and the committed `analyze-baseline.json`.
//!
//! A fingerprint identifies a finding *stably across edits elsewhere in
//! the file*: it hashes `rule | path | scope-path | message` — never
//! the line number — so inserting code above a known finding does not
//! resurface it, while moving the offending pattern to a different
//! function (a different scope) legitimately does. Identical findings
//! within one scope are disambiguated with an `#2`, `#3`, … occurrence
//! suffix in source order.
//!
//! The baseline is the analyzer's ratchet: [`Severity::Warn`] findings
//! listed in the committed `analyze-baseline.json` pass the gate;
//! anything else fails it. [`Severity::Deny`] findings are never
//! baselineable — the escape hatch for those is an inline justified
//! `cubis:allow`. `cubis-xtask analyze --fix-baseline` rewrites the
//! file from the current tree (refusing if deny findings are present),
//! which is also how stale entries get pruned.

use crate::{Finding, Severity};
use cubis_trace::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Schema version written into `analyze-baseline.json`.
pub const BASELINE_VERSION: u64 = 1;

/// Default baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// 64-bit FNV-1a. Stable, dependency-free, and plenty for a few hundred
/// findings (collisions only merge baseline entries, never hide a deny).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assign fingerprints to an ordered finding list (callers sort by
/// path/line first so occurrence suffixes are deterministic).
pub fn assign_fingerprints(findings: &mut [Finding]) {
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let base = format!(
            "{:016x}",
            fnv1a64(
                format!("{}|{}|{}|{}", f.rule, f.path.display(), f.scope, f.message).as_bytes()
            )
        );
        let n = seen.entry(base.clone()).or_insert(0);
        *n += 1;
        f.fingerprint = if *n == 1 { base } else { format!("{base}#{n}") };
    }
}

/// One recorded (baselined) finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule identifier (always a `Warn`-severity rule).
    pub rule: String,
    /// Workspace-relative path at record time.
    pub path: String,
    /// Scope path at record time (`fn price_out`, …).
    pub scope: String,
    /// Finding message at record time.
    pub message: String,
}

/// The parsed `analyze-baseline.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Fingerprint → recorded finding, sorted for stable serialization.
    pub entries: BTreeMap<String, BaselineEntry>,
}

impl Baseline {
    /// Build a baseline from the current tree's findings. Fails with
    /// the offending list if any `Deny` finding is present: those must
    /// be fixed or `cubis:allow`ed, never baselined.
    pub fn from_findings(findings: &[Finding]) -> Result<Baseline, Vec<Finding>> {
        let deny: Vec<Finding> = findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .cloned()
            .collect();
        if !deny.is_empty() {
            return Err(deny);
        }
        let mut entries = BTreeMap::new();
        for f in findings {
            entries.insert(
                f.fingerprint.clone(),
                BaselineEntry {
                    rule: f.rule.to_string(),
                    path: f.path.display().to_string(),
                    scope: f.scope.clone(),
                    message: f.message.clone(),
                },
            );
        }
        Ok(Baseline { entries })
    }

    /// Serialize to the committed JSON format (sorted, one stable
    /// ordering so diffs stay reviewable).
    pub fn to_json(&self) -> String {
        let entries: Vec<JsonValue> = self
            .entries
            .iter()
            .map(|(fp, e)| {
                JsonValue::Obj(vec![
                    ("fingerprint".into(), JsonValue::Str(fp.clone())),
                    ("rule".into(), JsonValue::Str(e.rule.clone())),
                    ("path".into(), JsonValue::Str(e.path.clone())),
                    ("scope".into(), JsonValue::Str(e.scope.clone())),
                    ("message".into(), JsonValue::Str(e.message.clone())),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("version".into(), JsonValue::Num(BASELINE_VERSION as f64)),
            ("entries".into(), JsonValue::Arr(entries)),
        ])
        .to_json_string()
    }

    /// Parse the committed JSON format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = json::parse(text).map_err(|e| format!("baseline JSON: {e}"))?;
        let version = v
            .get("version")
            .and_then(JsonValue::as_f64)
            .ok_or("baseline missing `version`")?;
        if version as u64 != BASELINE_VERSION {
            return Err(format!("unsupported baseline version {version}"));
        }
        let arr = v
            .get("entries")
            .and_then(JsonValue::as_arr)
            .ok_or("baseline missing `entries`")?;
        let mut entries = BTreeMap::new();
        for e in arr {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry missing `{k}`"))
            };
            entries.insert(
                field("fingerprint")?,
                BaselineEntry {
                    rule: field("rule")?,
                    path: field("path")?,
                    scope: field("scope")?,
                    message: field("message")?,
                },
            );
        }
        Ok(Baseline { entries })
    }

    /// Load `analyze-baseline.json` from the workspace root. A missing
    /// file is an empty baseline (`Ok(None)`), so fresh checkouts gate
    /// at full strictness; a malformed file is an error.
    pub fn load(root: &Path) -> io::Result<Option<Baseline>> {
        let path = root.join(BASELINE_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)?;
        Baseline::parse(&text).map(Some).map_err(io::Error::other)
    }
}

/// The gate's verdict on a finding set, relative to a baseline.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// `Deny` findings — always fatal, baseline or not.
    pub deny: Vec<Finding>,
    /// `Warn` findings not covered by the baseline — fatal.
    pub new_warn: Vec<Finding>,
    /// `Warn` findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline fingerprints that matched nothing (fixed since the
    /// baseline was recorded). Non-fatal; `--fix-baseline` prunes them.
    pub stale: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passes(&self) -> bool {
        self.deny.is_empty() && self.new_warn.is_empty()
    }
}

/// Split findings into the gate verdict against `baseline`.
pub fn gate(findings: Vec<Finding>, baseline: &Baseline) -> GateOutcome {
    let mut out = GateOutcome::default();
    let mut hit: BTreeMap<&str, bool> = baseline
        .entries
        .keys()
        .map(|k| (k.as_str(), false))
        .collect();
    for f in findings {
        match f.severity {
            Severity::Deny => out.deny.push(f),
            Severity::Warn => {
                if let Some(used) = hit.get_mut(f.fingerprint.as_str()) {
                    *used = true;
                    out.baselined.push(f);
                } else {
                    out.new_warn.push(f);
                }
            }
        }
    }
    out.stale = hit
        .into_iter()
        .filter(|(_, used)| !used)
        .map(|(k, _)| k.to_string())
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: &'static str, path: &str, line: u32, scope: &str, msg: &str) -> Finding {
        let mut f = Finding::new(rule, Path::new(path), line, msg.to_string());
        f.scope = scope.to_string();
        f
    }

    #[test]
    fn fingerprints_ignore_lines_but_see_scope_and_occurrence() {
        let mut a = vec![finding("NUM04", "crates/lp/src/x.rs", 10, "fn f", "m")];
        let mut b = vec![finding("NUM04", "crates/lp/src/x.rs", 99, "fn f", "m")];
        assign_fingerprints(&mut a);
        assign_fingerprints(&mut b);
        assert_eq!(a[0].fingerprint, b[0].fingerprint);

        let mut c = vec![finding("NUM04", "crates/lp/src/x.rs", 10, "fn g", "m")];
        assign_fingerprints(&mut c);
        assert_ne!(a[0].fingerprint, c[0].fingerprint, "scope must matter");

        let mut dup = vec![
            finding("NUM04", "crates/lp/src/x.rs", 10, "fn f", "m"),
            finding("NUM04", "crates/lp/src/x.rs", 20, "fn f", "m"),
        ];
        assign_fingerprints(&mut dup);
        assert_eq!(dup[1].fingerprint, format!("{}#2", dup[0].fingerprint));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut fs = vec![
            finding("NUM04", "crates/lp/src/x.rs", 10, "fn f", "lossy cast"),
            finding("PANIC01", "crates/milp/src/y.rs", 4, "fn g", "indexing"),
        ];
        assign_fingerprints(&mut fs);
        let b = Baseline::from_findings(&fs).unwrap();
        let restored = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(b, restored);
        assert_eq!(restored.entries.len(), 2);
    }

    #[test]
    fn deny_findings_are_not_baselineable() {
        let mut fs = vec![finding(
            "NUM01",
            "crates/lp/src/x.rs",
            1,
            "fn f",
            "float eq",
        )];
        assign_fingerprints(&mut fs);
        let err = Baseline::from_findings(&fs).unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].rule, "NUM01");
    }

    #[test]
    fn gate_splits_deny_new_baselined_and_stale() {
        let mut fs = vec![
            finding("NUM04", "crates/lp/src/x.rs", 10, "fn f", "old warn"),
            finding("NUM04", "crates/lp/src/x.rs", 20, "fn g", "new warn"),
            finding("NUM01", "crates/lp/src/x.rs", 30, "fn h", "deny"),
        ];
        assign_fingerprints(&mut fs);
        let baseline = Baseline::from_findings(&fs[..1]).unwrap();
        // A baseline entry that no longer matches anything:
        let mut stale = baseline.clone();
        stale.entries.insert(
            "deadbeefdeadbeef".into(),
            BaselineEntry {
                rule: "NUM04".into(),
                path: "gone.rs".into(),
                scope: "fn gone".into(),
                message: "fixed long ago".into(),
            },
        );
        let out = gate(fs, &stale);
        assert!(!out.passes());
        assert_eq!(out.deny.len(), 1);
        assert_eq!(out.new_warn.len(), 1);
        assert_eq!(out.baselined.len(), 1);
        assert_eq!(out.stale, vec!["deadbeefdeadbeef".to_string()]);
        assert_eq!(out.baselined[0].path, PathBuf::from("crates/lp/src/x.rs"));
    }

    #[test]
    fn missing_baseline_loads_as_none_and_malformed_errors() {
        let dir = std::env::temp_dir().join("cubis_baseline_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Baseline::load(&dir).unwrap().is_none());
        std::fs::write(dir.join(BASELINE_FILE), "{not json").unwrap();
        assert!(Baseline::load(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
