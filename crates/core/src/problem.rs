//! The behavioral-robust problem instance: a game plus an interval model.

use cubis_behavior::IntervalChoiceModel;
use cubis_game::SecurityGame;

/// Problem (5): the pairing of a [`SecurityGame`] with an
/// [`IntervalChoiceModel`] giving `[L_i(x_i), U_i(x_i)]`.
///
/// All CUBIS machinery consumes this view; it caches nothing, so it is
/// cheap to construct and freely shareable across threads (the borrow is
/// immutable).
#[derive(Debug, Clone, Copy)]
pub struct RobustProblem<'a, M> {
    /// The game (defender payoffs, resource budget).
    pub game: &'a SecurityGame,
    /// The uncertainty-interval attacker model.
    pub model: &'a M,
}

impl<'a, M: IntervalChoiceModel> RobustProblem<'a, M> {
    /// Pair a game with a model.
    pub fn new(game: &'a SecurityGame, model: &'a M) -> Self {
        Self { game, model }
    }

    /// Number of targets.
    pub fn num_targets(&self) -> usize {
        self.game.num_targets()
    }

    /// Resource budget `R`.
    pub fn resources(&self) -> f64 {
        self.game.resources()
    }

    /// Defender utility `Ud_i(x_i)` (equation 1).
    #[inline]
    pub fn ud(&self, i: usize, x_i: f64) -> f64 {
        self.game.defender_utility(i, x_i)
    }

    /// Attractiveness bounds `(L_i(x_i), U_i(x_i))`, both positive.
    #[inline]
    pub fn bounds(&self, i: usize, x_i: f64) -> (f64, f64) {
        self.model.bounds(self.game, i, x_i)
    }

    /// Binary-search range for the defender utility value:
    /// `[min_i Pd_i, max_i Rd_i]`.
    pub fn utility_range(&self) -> (f64, f64) {
        (self.game.min_defender_utility(), self.game.max_defender_utility())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{BoundConvention, Interval, SuqrUncertainty, UncertainSuqr};
    use cubis_game::TargetPayoffs;

    fn fixture() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::new(
            SuqrUncertainty::paper_example(),
            vec![
                (Interval::new(1.0, 5.0), Interval::new(-7.0, -3.0)),
                (Interval::new(5.0, 9.0), Interval::new(-9.0, -5.0)),
            ],
            BoundConvention::CornerComponentwise,
        );
        (game, model)
    }

    #[test]
    fn view_delegates() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        assert_eq!(p.num_targets(), 2);
        assert_eq!(p.resources(), 1.0);
        assert_eq!(p.ud(0, 1.0), 5.0);
        let (l, u) = p.bounds(0, 0.3);
        assert!(l > 0.0 && l <= u);
        assert_eq!(p.utility_range(), (-7.0, 7.0));
    }
}
