//! The single source of truth for the `cubis-xtask` command set.
//!
//! The binary's dispatch table and its usage text are both generated
//! from [`COMMANDS`], so adding a subcommand in one place cannot leave
//! the other stale — the failure mode this module exists to prevent
//! (the `bench` subcommand would otherwise have to be registered in a
//! `match` arm *and* a hand-written usage string). The binary carries a
//! unit test asserting its handler table covers exactly these names.

/// Metadata for one subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandSpec {
    /// Subcommand name as typed on the command line.
    pub name: &'static str,
    /// Usage line, starting with the name (flags included).
    pub usage: &'static str,
    /// One-line description for error messages and docs.
    pub what: &'static str,
}

/// Every `cubis-xtask` subcommand, in help-display order.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "analyze",
        usage: "analyze [--root <workspace-dir>] [--changed] [--json <path|->] [--sarif <path|->] [--fix-baseline]",
        what: "run the static-analysis pass vs analyze-baseline.json; exit 1 on new findings",
    },
    CommandSpec {
        name: "rules",
        usage: "rules",
        what: "print the analyzer rule table",
    },
    CommandSpec {
        name: "trace-report",
        usage: "trace-report <journal.json>",
        what: "render a recorded solve journal as a per-phase digest",
    },
    CommandSpec {
        name: "fuzz",
        usage: "fuzz [--iters <n>] [--seed <u64|0xhex>]",
        what: "differential-fuzz the solver stack through the oracle registry",
    },
    CommandSpec {
        name: "bench",
        usage: "bench [--smoke] [--out <path>] [--root <workspace-dir>]",
        what: "run the warm-vs-cold solve benchmark; write BENCH_solve.json",
    },
    CommandSpec {
        name: "loadgen",
        usage: "loadgen [--smoke] [--clients <n>] [--requests <n>] [--duplicate-rate <f>] [--seed <u64|0xhex>] [--data-dir <path>] [--out <path>] [--root <workspace-dir>]",
        what: "boot an in-process solve server, drive keep-alive closed-loop load with a restart-survival probe; write BENCH_serve.json",
    },
    CommandSpec {
        name: "ci",
        usage: "ci [--root <workspace-dir>]",
        what: "the local pre-merge gate (fmt, clippy, analyze, fuzz+scale+parser+bench+serve+reactor smoke, tests, docs)",
    },
];

/// Look up a command by name.
pub fn find(name: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == name)
}

/// `analyze | rules | …` — for the unknown-subcommand error.
pub fn names_line() -> String {
    COMMANDS
        .iter()
        .map(|c| c.name)
        .collect::<Vec<_>>()
        .join(" | ")
}

/// The full multi-line usage text, one line per command.
pub fn usage_text() -> String {
    let mut out = String::from("usage:\n");
    for c in COMMANDS {
        out.push_str("  cubis-xtask ");
        out.push_str(c.usage);
        out.push_str("\n      ");
        out.push_str(c.what);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for c in COMMANDS {
            assert!(!c.name.is_empty());
            assert!(seen.insert(c.name), "duplicate command `{}`", c.name);
            assert!(
                c.usage.starts_with(c.name),
                "usage for `{}` must start with the name",
                c.name
            );
        }
    }

    #[test]
    fn bench_is_registered() {
        assert!(find("bench").is_some());
        assert!(usage_text().contains("BENCH_solve.json"));
        assert!(names_line().contains("bench"));
    }

    #[test]
    fn loadgen_is_registered() {
        assert!(find("loadgen").is_some());
        assert!(usage_text().contains("BENCH_serve.json"));
        assert!(names_line().contains("loadgen"));
        // The persistent tier's flag must be documented.
        assert!(find("loadgen").unwrap().usage.contains("--data-dir"));
    }

    #[test]
    fn unknown_names_miss() {
        assert!(find("frobnicate").is_none());
    }
}
