//! Basis bookkeeping for the revised simplex: variable statuses, the
//! reusable [`Basis`] handle that branch-and-bound threads between
//! nodes, and the LU-plus-eta factorization behind FTRAN/BTRAN.
//!
//! The factorization is the product form of the inverse: a dense LU of
//! the basis matrix at the last refactorization point, composed with one
//! eta matrix per pivot since. `B_k = B_0·E_1·…·E_k`, where `E_i` is the
//! identity with one column replaced by the pivot column
//! `w = B_{i-1}⁻¹·a_enter`. Solves apply the LU and then the eta chain
//! (forward for FTRAN, reversed and transposed for BTRAN); the chain is
//! collapsed back into a fresh LU by the refactorization policy (see
//! `docs/SOLVER.md`).

use crate::sparse::SparseMat;
use cubis_linalg::{Lu, Matrix};

/// Where a column currently sits relative to its bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    /// In the basis; value tracked per row.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Free nonbasic variable parked at 0.
    Free,
}

/// A snapshot of a simplex basis: which column is basic in each row and
/// the bound status of every column.
///
/// This is the warm-restart currency of the workspace: an optimal basis
/// returned by [`crate::SimplexEngine::solve_with`] can be handed to a
/// later solve of the *same* engine whose bounds were tightened (the
/// branch-and-bound child-node case), where it seeds a dual-simplex
/// restart instead of a from-scratch two-phase solve. The handle is
/// cheap to clone and share (`Arc<Basis>` in the MILP node queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column of each row, in row order.
    pub(crate) basic: Vec<usize>,
    /// Status of every column of the canonical system.
    pub(crate) status: Vec<VarStatus>,
}

impl Basis {
    /// Number of rows (basic columns) in the snapshot.
    pub fn rows(&self) -> usize {
        self.basic.len()
    }

    /// Number of columns of the canonical system the snapshot covers.
    pub fn cols(&self) -> usize {
        self.status.len()
    }
}

/// One product-form update: after a pivot on basis position `row` with
/// pivot column `w` (the FTRANed entering column), `B_new⁻¹·v` is
/// `apply_fwd(B_old⁻¹·v)`.
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    pub row: usize,
    /// Dense pivot column `w = B_old⁻¹·a_enter`; `w[row]` is the pivot.
    pub w: Vec<f64>,
}

impl Eta {
    /// In-place `E⁻¹·v`.
    #[inline]
    fn apply_fwd(&self, v: &mut [f64]) {
        let t = v[self.row] / self.w[self.row];
        for (vi, &wi) in v.iter_mut().zip(&self.w) {
            // cubis:allow(NUM01): exact-zero sparsity skip over the eta
            // column; any bit-nonzero coefficient must be applied.
            if wi != 0.0 {
                *vi -= wi * t;
            }
        }
        v[self.row] = t;
    }

    /// In-place `E⁻ᵀ·v`.
    #[inline]
    fn apply_rev(&self, v: &mut [f64]) {
        let mut s = 0.0;
        for (i, (&vi, &wi)) in v.iter().zip(&self.w).enumerate() {
            // cubis:allow(NUM01): exact-zero sparsity skip, as above.
            if i != self.row && wi != 0.0 {
                s += wi * vi;
            }
        }
        v[self.row] = (v[self.row] - s) / self.w[self.row];
    }
}

/// Reciprocal of `max` rounded to the nearest power of two, so scaling
/// multiplies are exact in binary floating point (CUBIS coefficients are
/// dyadic; equilibration must not perturb them). Zero maxima map to 1.0
/// and leave the singular row/column for the LU to report.
#[inline]
fn pow2_recip(max: f64) -> f64 {
    if max <= 0.0 || !max.is_finite() {
        1.0
    } else {
        (-max.log2().round()).exp2()
    }
}

/// LU-factorized basis plus the eta chain accumulated since the last
/// refactorization.
///
/// The LU is computed on the *equilibrated* basis `B̂ = R·B·C`, where `R`
/// and `C` are power-of-two diagonal scalings that bring every row and
/// column to O(1) magnitude. CUBIS bases mix coefficients across ten
/// orders of magnitude (attack-probability products near 1e-9 next to
/// unit slack entries); without equilibration, partial pivoting's
/// whole-matrix-relative singularity test misreads a legitimately tiny
/// row as a dependent one. The scalings are applied and undone inside
/// [`ftran`](Self::ftran)/[`btran`](Self::btran), so callers see plain
/// `B⁻¹` semantics.
#[derive(Debug, Clone)]
pub(crate) struct Factorization {
    lu: Lu,
    /// Row equilibration `R` (power-of-two, indexed by constraint row).
    row_scale: Vec<f64>,
    /// Column equilibration `C` (power-of-two, indexed by basis position).
    col_scale: Vec<f64>,
    etas: Vec<Eta>,
    /// The basic-column array the *composed* factorization represents
    /// (LU basis plus all eta updates). Lets a warm restart detect that
    /// the engine's live factorization already matches the requested
    /// basis and skip the rebuild entirely.
    pub basic: Vec<usize>,
}

impl Factorization {
    /// Factor the basis `{a_j : j ∈ basic}` of the canonical matrix.
    /// Fails if the basis matrix is singular to working precision.
    pub fn factor(mat: &SparseMat, basic: &[usize]) -> Option<Self> {
        let m = mat.rows();
        debug_assert_eq!(basic.len(), m);
        let mut b = Matrix::zeros(m, m);
        for (pos, &j) in basic.iter().enumerate() {
            let (rows, vals) = mat.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                b[(r, pos)] = v;
            }
        }
        // Equilibrate: rows first, then columns of the row-scaled matrix.
        let mut row_scale = vec![1.0; m];
        for i in 0..m {
            let mut mx = 0.0f64;
            for j in 0..m {
                mx = mx.max(b[(i, j)].abs());
            }
            row_scale[i] = pow2_recip(mx);
        }
        for i in 0..m {
            let s = row_scale[i];
            for j in 0..m {
                b[(i, j)] *= s;
            }
        }
        let mut col_scale = vec![1.0; m];
        for j in 0..m {
            let mut mx = 0.0f64;
            for i in 0..m {
                mx = mx.max(b[(i, j)].abs());
            }
            col_scale[j] = pow2_recip(mx);
        }
        for j in 0..m {
            let s = col_scale[j];
            for i in 0..m {
                b[(i, j)] *= s;
            }
        }
        // Simplex bases are exactly invertible by construction (every
        // pivot had a nonzero FTRAN image), but degenerate CUBIS node
        // LPs legitimately walk through bases conditioned far beyond
        // 1/SINGULARITY_TOL. Only a structurally zero pivot aborts the
        // factorization here; solve accuracy on an ill-conditioned but
        // invertible basis is judged where it can actually be measured
        // — the engine's iterative refinement against pristine columns
        // and its post-refactorization feasibility check.
        const BASIS_PIVOT_TOL: f64 = 1e-300;
        let lu = Lu::factor_with_tol(&b, BASIS_PIVOT_TOL).ok()?;
        Some(Self { lu, row_scale, col_scale, etas: Vec::new(), basic: basic.to_vec() })
    }

    /// Number of eta updates appended since the LU was computed.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// FTRAN: solve `B·x = v` in place.
    ///
    /// With `B̂ = R·B₀·C` factored, `B₀⁻¹·v = C·B̂⁻¹·(R·v)`; the eta
    /// chain then lifts `B₀⁻¹` to the current basis.
    pub fn ftran(&self, v: &mut Vec<f64>) {
        for (vi, &s) in v.iter_mut().zip(&self.row_scale) {
            *vi *= s;
        }
        *v = self.lu.solve(v);
        for (vi, &s) in v.iter_mut().zip(&self.col_scale) {
            *vi *= s;
        }
        for eta in &self.etas {
            eta.apply_fwd(v);
        }
    }

    /// BTRAN: solve `Bᵀ·y = v` in place.
    ///
    /// Transposed composition of [`ftran`](Self::ftran): etas first (in
    /// reverse), then `B₀⁻ᵀ·u = R·B̂⁻ᵀ·(C·u)`.
    pub fn btran(&self, v: &mut Vec<f64>) {
        for eta in self.etas.iter().rev() {
            eta.apply_rev(v);
        }
        for (vi, &s) in v.iter_mut().zip(&self.col_scale) {
            *vi *= s;
        }
        *v = self.lu.solve_transposed(v);
        for (vi, &s) in v.iter_mut().zip(&self.row_scale) {
            *vi *= s;
        }
    }

    /// Record a pivot: basis position `row` is replaced by the column
    /// whose FTRANed image is `w`. The caller updates its own `basic`
    /// array; `entering` keeps this factorization's copy in sync.
    pub fn push_eta(&mut self, row: usize, w: Vec<f64>, entering: usize) {
        self.basic[row] = entering;
        self.etas.push(Eta { row, w });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(m: usize, cols: &[&[(usize, f64)]]) -> SparseMat {
        let v: Vec<Vec<(usize, f64)>> = cols.iter().map(|c| c.to_vec()).collect();
        SparseMat::from_columns(m, &v)
    }

    #[test]
    fn factor_and_solve_identity_like_basis() {
        // Columns: e0, e1, [1, 2].
        let mat = dense_cols(2, &[&[(0, 1.0)], &[(1, 1.0)], &[(0, 1.0), (1, 2.0)]]);
        let f = Factorization::factor(&mat, &[0, 1]).unwrap();
        let mut v = vec![3.0, 7.0];
        f.ftran(&mut v);
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // Basis {e0, e1}; replace position 0 with column a = [2, 1].
        let mat = dense_cols(2, &[&[(0, 1.0)], &[(1, 1.0)], &[(0, 2.0), (1, 1.0)]]);
        let mut f = Factorization::factor(&mat, &[0, 1]).unwrap();
        let mut w = vec![0.0; 2];
        mat.col_axpy(2, 1.0, &mut w);
        f.ftran(&mut w); // w = B⁻¹·a = [2, 1]
        f.push_eta(0, w, 2);
        assert_eq!(f.basic, vec![2, 1]);
        assert_eq!(f.eta_count(), 1);

        let fresh = Factorization::factor(&mat, &[2, 1]).unwrap();
        let b = vec![5.0, 4.0];
        let mut x1 = b.clone();
        f.ftran(&mut x1);
        let mut x2 = b.clone();
        fresh.ftran(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12, "{x1:?} vs {x2:?}");
        }

        let mut y1 = b.clone();
        f.btran(&mut y1);
        let mut y2 = b;
        fresh.btran(&mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let mat = dense_cols(2, &[&[(0, 1.0)], &[(0, 2.0)]]);
        assert!(Factorization::factor(&mat, &[0, 1]).is_none());
    }
}
