//! The subjective utility quantal response (SUQR) model.

use crate::choice::ChoiceModel;
use cubis_game::SecurityGame;
use serde::{Deserialize, Serialize};

/// SUQR feature weights `(w1, w2, w3)` of equation (3).
///
/// `w1 < 0` weights the defender's coverage (more coverage deters),
/// `w2 > 0` weights the attacker's reward, `w3 > 0` weights the
/// attacker's penalty (which is itself negative). The literature point
/// estimate learned from human-subject data is
/// [`SuqrWeights::LITERATURE`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuqrWeights {
    /// Coverage weight `w1` (negative).
    pub w1: f64,
    /// Reward weight `w2` (positive).
    pub w2: f64,
    /// Penalty weight `w3` (positive).
    pub w3: f64,
}

impl SuqrWeights {
    /// The point estimate reported by Nguyen et al. (AAAI'13) from AMT
    /// human-subject experiments: `(−9.85, 0.37, 0.15)`.
    pub const LITERATURE: SuqrWeights = SuqrWeights { w1: -9.85, w2: 0.37, w3: 0.15 };

    /// Construct weights.
    ///
    /// # Panics
    /// Panics on non-finite values or if the sign conventions are
    /// violated (`w1 ≤ 0`, `w2 ≥ 0`, `w3 ≥ 0`).
    pub fn new(w1: f64, w2: f64, w3: f64) -> Self {
        assert!(w1.is_finite() && w2.is_finite() && w3.is_finite(), "SuqrWeights: non-finite");
        assert!(w1 <= 0.0, "SuqrWeights: w1 {w1} must be <= 0");
        assert!(w2 >= 0.0, "SuqrWeights: w2 {w2} must be >= 0");
        assert!(w3 >= 0.0, "SuqrWeights: w3 {w3} must be >= 0");
        Self { w1, w2, w3 }
    }
}

/// SUQR: `F_i(x_i) = exp(w1·x_i + w2·Ra_i + w3·Pa_i)` — a special case
/// of the general discrete-choice model (4) with the subjective utility
/// of equation (3) as the exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Suqr {
    /// Feature weights.
    pub weights: SuqrWeights,
}

impl Suqr {
    /// Construct from weights.
    pub fn new(weights: SuqrWeights) -> Self {
        Self { weights }
    }

    /// The subjective utility `ŵ·features` of equation (3).
    pub fn subjective_utility(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        let t = game.target(i);
        self.weights.w1 * x_i + self.weights.w2 * t.att_reward + self.weights.w3 * t.att_penalty
    }
}

impl ChoiceModel for Suqr {
    fn log_attractiveness(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        self.subjective_utility(game, i, x_i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::choice::attack_distribution;
    use cubis_game::TargetPayoffs;

    fn game() -> SecurityGame {
        SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 8.0, -2.0),
                TargetPayoffs::new(2.0, -6.0, 3.0, -4.0),
            ],
            1.0,
        )
    }

    #[test]
    fn subjective_utility_matches_formula() {
        let g = game();
        let m = Suqr::new(SuqrWeights::new(-2.0, 0.5, 0.4));
        // w1·x + w2·Ra + w3·Pa = -2·0.3 + 0.5·8 + 0.4·(-2) = 2.6
        assert!((m.subjective_utility(&g, 0, 0.3) - 2.6).abs() < 1e-12);
    }

    #[test]
    fn attractiveness_decreases_in_coverage() {
        let g = game();
        let m = Suqr::new(SuqrWeights::LITERATURE);
        assert!(m.log_attractiveness(&g, 0, 0.8) < m.log_attractiveness(&g, 0, 0.2));
    }

    #[test]
    fn richer_target_attracts_more() {
        let g = game();
        let m = Suqr::new(SuqrWeights::new(-5.0, 0.8, 0.3));
        // Equal coverage: target 0 (Ra=8, Pa=-2) beats target 1 (Ra=3, Pa=-4).
        let q = attack_distribution(&m, &g, &[0.5, 0.5]);
        assert!(q[0] > q[1]);
    }

    #[test]
    fn literature_weights_are_valid() {
        let w = SuqrWeights::LITERATURE;
        let _ = SuqrWeights::new(w.w1, w.w2, w.w3); // must not panic
    }

    #[test]
    #[should_panic(expected = "w1")]
    fn positive_w1_rejected() {
        SuqrWeights::new(1.0, 0.5, 0.5);
    }
}
