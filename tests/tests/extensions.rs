//! Integration tests for the beyond-the-paper modules: prospect-theory
//! interval models through the full CUBIS stack, the learning loop,
//! schedule sampling of robust strategies, and sensitivity analysis.

use cubis_behavior::prospect::{ProspectParams, UncertainProspect};
use cubis_behavior::{
    AttackDataset, BoundConvention, FitOptions, Interval, SuqrWeights,
    UncertainSuqr,
};
use cubis_core::{Cubis, DpInner, MilpInner, RobustProblem};
use cubis_eval::fixtures::workload;
use cubis_game::GameGenerator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn cubis_milp_solves_prospect_theory_games() {
    // The paper's machinery is model-agnostic: run the full MILP route
    // on a prospect-theory interval adversary.
    let game = GameGenerator::new(400).generate(5, 2.0);
    let model = UncertainProspect::new(
        ProspectParams::TVERSKY_KAHNEMAN,
        Interval::new(1.2, 3.2),
        Interval::new(0.4, 1.4),
    );
    let p = RobustProblem::new(&game, &model);
    let milp = Cubis::new(MilpInner::new(8)).with_epsilon(1e-2).solve(&p).unwrap();
    let dp = Cubis::new(DpInner::new(100)).with_epsilon(1e-2).solve(&p).unwrap();
    assert!(
        (milp.worst_case - dp.worst_case).abs() < 0.2,
        "milp {} vs dp {} on a PT game",
        milp.worst_case,
        dp.worst_case
    );
    // Robustness dominance still holds on PT games.
    let uniform = cubis_game::uniform_coverage(5, 2.0);
    assert!(dp.worst_case >= p.worst_case(&uniform).utility - 0.05);
}

#[test]
fn learning_to_patrol_pipeline() {
    // data → MLE → bootstrap box → CUBIS → implementable patrols.
    let game = GameGenerator::new(401).generate(5, 2.0);
    let truth = SuqrWeights::new(-5.0, 0.7, 0.3);
    let data = AttackDataset::synthetic(&game, truth, 300, 8);
    let opts = FitOptions { max_iters: 120, ..Default::default() };
    let weight_box = cubis_behavior::bootstrap_box(&game, &data, 8, 0.1, 2, &opts);
    let model =
        UncertainSuqr::from_game(&game, weight_box, 0.0, BoundConvention::ExactInterval);
    let p = RobustProblem::new(&game, &model);
    let sol = Cubis::new(DpInner::new(80)).with_epsilon(1e-2).solve(&p).unwrap();

    // The robust plan is feasible and samples into valid daily patrols
    // whose empirical marginals match.
    assert!(game.check_coverage(&sol.x, 1e-6).is_ok());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let emp = cubis_game::empirical_coverage(&sol.x, 20_000, &mut rng);
    for (e, &xi) in emp.iter().zip(&sol.x) {
        assert!((e - xi).abs() < 0.02, "empirical {e} vs marginal {xi}");
    }
}

#[test]
fn sensitivity_is_consistent_with_reoptimization() {
    // Resolving the top-VOI target then re-solving robustly should gain
    // at least as much as the VOI of that target under the FIXED
    // strategy (re-optimizing can only help further).
    let (game, model) = workload(5, 5, 2.0, 0.8);
    let p = RobustProblem::new(&game, &model);
    let sol = Cubis::new(DpInner::new(80)).with_epsilon(1e-2).solve(&p).unwrap();
    let voi = cubis_core::value_of_information(&p, &sol.x);
    let top = cubis_core::rank_targets(&p, &sol.x)[0];

    // Collapse the top target's payoff interval to midpoints.
    let mut resolved = model.clone();
    resolved.payoffs[top] = (
        Interval::point(resolved.payoffs[top].0.mid()),
        Interval::point(resolved.payoffs[top].1.mid()),
    );
    let pr = RobustProblem::new(&game, &resolved);
    let re_sol = Cubis::new(DpInner::new(80)).with_epsilon(1e-2).solve(&pr).unwrap();
    // Note: VOI collapses the whole log-interval (weights included), so
    // it is an upper bound on what payoff-resolution alone buys; assert
    // the weaker, always-true direction: re-optimized ≥ fixed-strategy
    // value under the resolved model minus tolerance.
    let fixed_val = pr.worst_case(&sol.x).utility;
    assert!(
        re_sol.worst_case >= fixed_val - 0.05,
        "re-optimizing lost value: {} < {fixed_val}",
        re_sol.worst_case
    );
    let _ = voi; // ranking exercised above
}

#[test]
fn suqr_uncertainty_box_scaling_consistency() {
    // End-to-end: δ-scaled boxes give monotone worst-case values for a
    // fixed strategy across the whole pipeline.
    let (game, base) = workload(9, 6, 2.0, 1.0);
    let x = cubis_game::uniform_coverage(6, 2.0);
    let mut prev = f64::NEG_INFINITY;
    for step in (0..=4).rev() {
        let delta = step as f64 / 4.0;
        let model = base.scale_width(delta);
        let p = RobustProblem::new(&game, &model);
        let wc = p.worst_case(&x).utility;
        assert!(wc >= prev - 1e-9, "worst case not monotone in δ: {wc} < {prev}");
        prev = wc;
    }
}

#[test]
fn greedy_backend_runs_full_binary_search() {
    let (game, model) = workload(11, 6, 2.0, 0.5);
    let p = RobustProblem::new(&game, &model);
    let greedy = Cubis::new(cubis_core::GreedyInner::new(60))
        .with_epsilon(1e-2)
        .solve(&p)
        .unwrap();
    let exact = Cubis::new(DpInner::new(60)).with_epsilon(1e-2).solve(&p).unwrap();
    // Greedy is a heuristic lower bound on the inner max, so its binary
    // search can stall early — but never above the exact route.
    assert!(greedy.lb <= exact.lb + 1e-6, "greedy lb {} > exact lb {}", greedy.lb, exact.lb);
    // Budget mode is ≤ R, so only the box and budget-sum need to hold.
    assert!(greedy.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    assert!(greedy.x.iter().sum::<f64>() <= game.resources() + 1e-6);
}

#[test]
fn paper_formulation_full_pipeline() {
    // The verbatim MILP (33–40) drives the same binary search to the
    // same answer as the reduced default.
    let (game, model) = workload(13, 4, 1.0, 0.5);
    let p = RobustProblem::new(&game, &model);
    let reduced = Cubis::new(MilpInner::new(6)).with_epsilon(1e-2).solve(&p).unwrap();
    let paper = Cubis::new(MilpInner::new(6).paper_formulation())
        .with_epsilon(1e-2)
        .solve(&p)
        .unwrap();
    // The per-step feasibility *decisions* must coincide (same linearized
    // maximum, sign-exact early termination), so the binary-search bounds
    // are identical; the returned witness strategies may differ slightly,
    // so their exact worst cases agree only up to the O(1/K) slack.
    assert!(
        (reduced.lb - paper.lb).abs() < 1e-9,
        "lb diverged: reduced {} vs paper {}",
        reduced.lb,
        paper.lb
    );
    assert!(
        (reduced.worst_case - paper.worst_case).abs() < 0.05,
        "reduced {} vs paper {}",
        reduced.worst_case,
        paper.worst_case
    );
}
