//! Attacker behavioral models for security games.
//!
//! Section II of the paper works with a general discrete-choice model of
//! quantal response: the attacker picks target `i` with probability
//!
//! ```text
//! q_i(x) = F_i(x_i) / Σ_j F_j(x_j)                      (4)
//! ```
//!
//! where `F_i : [0,1] → ℝ⁺` is positive and decreasing in coverage.
//! This crate provides:
//!
//! * [`ChoiceModel`] — the point-estimate interface (`log F_i`), with
//!   [`Qr`] and [`Suqr`] implementations and a numerically stable
//!   softmax ([`attack_distribution`]);
//! * [`IntervalChoiceModel`] — the uncertainty-interval interface
//!   `L_i(x_i) ≤ F_i(x_i) ≤ U_i(x_i)` of Section III, with
//!   [`UncertainSuqr`] (parameter boxes + payoff intervals) and
//!   [`FixedChoice`] (degenerate intervals, used by the midpoint
//!   baseline);
//! * [`Interval`] — closed-interval arithmetic used to derive the bounds.
//!
//! Two bound conventions are implemented (see [`BoundConvention`]): the
//! paper's component-wise corner evaluation, and exact interval
//! arithmetic. The worked example of the paper (Table I) uses the former.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choice;
pub mod interval;
pub mod learning;
pub mod prospect;
pub mod qr;
pub mod suqr;
pub mod uncertain;

pub use choice::{attack_distribution, ChoiceModel};
pub use interval::Interval;
pub use learning::{bootstrap_box, fit_suqr, AttackDataset, FitOptions, Observation};
pub use prospect::{Prospect, ProspectParams, UncertainProspect};
pub use qr::{Qr, UncertainQr};
pub use suqr::{Suqr, SuqrWeights};
pub use uncertain::{
    BoundConvention, FixedChoice, IntervalChoiceModel, SuqrUncertainty, UncertainSuqr,
};

/// Exponent clamp applied before `exp` in every model, keeping
/// attractiveness values positive, finite and within ~`e±60` of each
/// other — far wider than any payoff scale used in the literature while
/// still safe in `f64`.
pub const EXPONENT_CLAMP: f64 = 60.0;

/// Clamp an exponent into `[-EXPONENT_CLAMP, EXPONENT_CLAMP]`.
#[inline]
pub fn clamp_exponent(e: f64) -> f64 {
    e.clamp(-EXPONENT_CLAMP, EXPONENT_CLAMP)
}
