//! Aggregation and timing helpers.

use std::time::Instant;

/// Mean of a sample (NaN for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Median (NaN for an empty slice); averages the middle pair.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// A labelled sample accumulated across instances.
#[derive(Debug, Clone, Default)]
pub struct Series {
    values: Vec<f64>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a value.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Mean of the collected values.
    pub fn mean(&self) -> f64 {
        mean(&self.values)
    }

    /// Sample standard deviation of the collected values.
    pub fn std_dev(&self) -> f64 {
        std_dev(&self.values)
    }

    /// `mean ± std` formatted for tables.
    pub fn summary(&self) -> String {
        format!("{:+.3} ± {:.3}", self.mean(), self.std_dev())
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn series_accumulates() {
        let mut s = Series::new();
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
