//! Size-based routing between the MILP and breakpoint-grid engines.
//!
//! The MILP is the paper's formulation and stays the cross-check
//! oracle, but its cost scales with branch-and-bound nodes; the
//! [`ScaleInner`] envelope greedy scales with `T·P` and certifies its
//! own slack. [`RoutedInner`] holds both and picks per *call*, so one
//! solver instance (and one serve worker) handles a 3-target park and a
//! 100 000-target park with the right engine each time.

use super::scale::ScaleInner;
use super::{InnerResult, InnerSolver, MilpInner, SolveError};
use crate::problem::RobustProblem;
use crate::warm::WarmState;
use cubis_behavior::IntervalChoiceModel;
use cubis_trace::SharedRecorder;

/// Instances with more targets than this route to [`ScaleInner`] under
/// [`InnerPolicy::Auto`]. Calibrated in `docs/SCALE.md`: below it the
/// MILP's warm-started solves are already sub-millisecond and carry a
/// zero gap; above it the MILP's node count starts to grow while the
/// envelope greedy stays `O(T·P)` with a certificate that *shrinks*
/// in `T`.
pub const AUTO_SCALE_THRESHOLD: usize = 32;

/// Which inner engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InnerPolicy {
    /// Always the paper's MILP (exact on its linearization).
    Milp,
    /// Always the breakpoint-grid envelope greedy (certified gap).
    Scale,
    /// Pick by instance size: MILP up to [`AUTO_SCALE_THRESHOLD`]
    /// targets, scale beyond.
    #[default]
    Auto,
}

/// The engine [`InnerPolicy`] resolves to for a concrete instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerEngine {
    /// The MILP route.
    Milp,
    /// The breakpoint-grid route.
    Scale,
}

impl InnerPolicy {
    /// Resolve this policy for an instance with `targets` targets.
    pub fn engine_for(self, targets: usize) -> InnerEngine {
        match self {
            InnerPolicy::Milp => InnerEngine::Milp,
            InnerPolicy::Scale => InnerEngine::Scale,
            InnerPolicy::Auto => {
                if targets > AUTO_SCALE_THRESHOLD {
                    InnerEngine::Scale
                } else {
                    InnerEngine::Milp
                }
            }
        }
    }
}

/// An [`InnerSolver`] that dispatches each probe to the MILP or the
/// scale engine according to an [`InnerPolicy`].
#[derive(Debug, Clone)]
pub struct RoutedInner {
    /// The routing policy (fixed per solver; resolved per call).
    pub policy: InnerPolicy,
    milp: MilpInner,
    scale: ScaleInner,
}

impl RoutedInner {
    /// A routed solver whose MILP uses `resolution` segments and whose
    /// scale engine uses `resolution` grid points per unit — matched on
    /// purpose so [`InnerSolver::resolution`] (the certificate's `K`)
    /// is well-defined regardless of which engine a probe takes.
    pub fn new(policy: InnerPolicy, resolution: usize) -> Self {
        Self {
            policy,
            milp: MilpInner::new(resolution),
            scale: ScaleInner::new(resolution),
        }
    }

    /// The engine this solver would pick for a `targets`-target
    /// instance.
    pub fn engine_for(&self, targets: usize) -> InnerEngine {
        self.policy.engine_for(targets)
    }
}

impl InnerSolver for RoutedInner {
    fn maximize_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
    ) -> Result<InnerResult, SolveError> {
        match self.engine_for(p.num_targets()) {
            InnerEngine::Milp => self.milp.maximize_g(p, c),
            InnerEngine::Scale => self.scale.maximize_g(p, c),
        }
    }

    fn feasibility_g<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
    ) -> Result<InnerResult, SolveError> {
        match self.engine_for(p.num_targets()) {
            InnerEngine::Milp => self.milp.feasibility_g(p, c, tol),
            InnerEngine::Scale => self.scale.feasibility_g(p, c, tol),
        }
    }

    fn feasibility_g_warm<M: IntervalChoiceModel>(
        &self,
        p: &RobustProblem<'_, M>,
        c: f64,
        tol: f64,
        warm: &mut WarmState,
    ) -> Result<InnerResult, SolveError> {
        match self.engine_for(p.num_targets()) {
            InnerEngine::Milp => self.milp.feasibility_g_warm(p, c, tol, warm),
            InnerEngine::Scale => self.scale.feasibility_g_warm(p, c, tol, warm),
        }
    }

    fn resolution(&self) -> Option<usize> {
        self.scale.resolution()
    }

    fn name(&self) -> &'static str {
        match self.policy {
            InnerPolicy::Milp => "milp",
            InnerPolicy::Scale => "scale",
            InnerPolicy::Auto => "auto",
        }
    }

    fn attach_recorder(&mut self, recorder: &SharedRecorder) {
        self.milp.attach_recorder(recorder);
        self.scale.attach_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_routes_by_target_count() {
        let auto = InnerPolicy::Auto;
        assert_eq!(auto.engine_for(2), InnerEngine::Milp);
        assert_eq!(auto.engine_for(AUTO_SCALE_THRESHOLD), InnerEngine::Milp);
        assert_eq!(auto.engine_for(AUTO_SCALE_THRESHOLD + 1), InnerEngine::Scale);
        assert_eq!(InnerPolicy::Milp.engine_for(100_000), InnerEngine::Milp);
        assert_eq!(InnerPolicy::Scale.engine_for(2), InnerEngine::Scale);
    }

    #[test]
    fn names_follow_the_policy() {
        assert_eq!(RoutedInner::new(InnerPolicy::Auto, 8).name(), "auto");
        assert_eq!(RoutedInner::new(InnerPolicy::Milp, 8).name(), "milp");
        assert_eq!(RoutedInner::new(InnerPolicy::Scale, 8).name(), "scale");
        assert_eq!(RoutedInner::new(InnerPolicy::Auto, 8).resolution(), Some(8));
    }
}
