//! The no-model baseline: uniform coverage.

use cubis_game::SecurityGame;

/// Spread resources evenly: `x_i = R / T`.
pub fn solve_uniform(game: &SecurityGame) -> Vec<f64> {
    cubis_game::uniform_coverage(game.num_targets(), game.resources())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_game::GameGenerator;

    #[test]
    fn uniform_is_feasible() {
        let game = GameGenerator::new(3).generate(7, 3.0);
        let x = solve_uniform(&game);
        assert!(game.check_coverage(&x, 1e-9).is_ok());
        assert!((x[0] - 3.0 / 7.0).abs() < 1e-12);
    }
}
