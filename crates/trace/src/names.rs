//! The workspace counter/span name registry.
//!
//! Every counter and span name that solver library code emits through a
//! [`crate::SharedRecorder`] is declared here, once, with a one-line
//! description. Three consumers read this table:
//!
//! - `cubis-serve`'s `/metrics` endpoint pre-populates every registered
//!   counter at zero, so scrapes expose the full counter set even
//!   before the first solve touches it,
//! - `cubis-xtask trace-report` uses it to describe counters in its
//!   digest tables and to flag journal entries with unregistered names,
//! - `cubis-xtask analyze` rule **TRC01** statically cross-checks this
//!   table against every `.counter("…")` / `.span("…")` call site in
//!   library code: an emission with an unregistered name fails the
//!   gate, and so does a registered name with no emission site (a dead
//!   counter).
//!
//! To add a counter: emit it in the solver crate *and* add a row here
//! (TRC01 will hold the door until both halves exist). To retire one:
//! remove both halves in the same change.

/// Registered counter names: `(name, what one unit of the counter means)`.
///
/// Sorted by name; [`names_are_sorted_and_unique`](crate::names) is
/// enforced by unit test so lookups can binary-search.
pub const COUNTERS: &[(&str, &str)] = &[
    ("bb.nodes", "branch-and-bound nodes expanded"),
    ("bb.solves", "branch-and-bound solve invocations"),
    (
        "cubis.bound_hints",
        "warm-start objective bound hints applied",
    ),
    (
        "cubis.cached_builds",
        "inner-model builds served from the warm cache",
    ),
    (
        "cubis.cold_builds",
        "inner-model builds constructed from scratch",
    ),
    (
        "cubis.warm_seeds",
        "inner solves seeded from a prior basis/incumbent",
    ),
    (
        "inner.scale_probes",
        "breakpoint-grid envelope-greedy inner probes",
    ),
    (
        "inner.scale_repairs",
        "scale probes whose straddling target took a local repair",
    ),
    (
        "inner.scale_segments",
        "upper-concave-hull segments built across scale probes",
    ),
    (
        "lp.dual_restarts",
        "LP solves warm-restarted via the dual simplex from a parent basis",
    ),
    (
        "lp.eta_updates",
        "product-form eta updates appended to a basis factorization",
    ),
    ("lp.pivots", "simplex pivot steps"),
    ("lp.refactorizations", "LU basis refactorizations"),
    ("lp.solves", "LP solve invocations"),
    (
        "pg.iterations",
        "projected-gradient iterations across all starts",
    ),
    ("pg.starts", "projected-gradient restart count"),
    (
        "reactor.accepts",
        "TCP connections accepted by the serve reactor",
    ),
    (
        "reactor.keepalive_reuse",
        "requests served over an already-used keep-alive connection",
    ),
    (
        "reactor.readiness_events",
        "readiness events delivered by the reactor's poller backend",
    ),
    (
        "reactor.timeout_kills",
        "connections closed by idle/read/write deadline expiry",
    ),
    (
        "reactor.wakeups",
        "reactor event-loop iterations (poll wakeups)",
    ),
    (
        "serve.cache_tier1_hits",
        "solve responses served from the in-memory hot cache tier",
    ),
    (
        "serve.cache_tier2_hits",
        "solve responses served from the persistent cache tier",
    ),
    (
        "worst_type.steps",
        "worst-case attacker-type oracle evaluations",
    ),
];

/// Registered span names: `(name, what the timed region covers)`.
///
/// Sorted by name, same discipline as [`COUNTERS`].
pub const SPANS: &[(&str, &str)] = &[
    ("bb.solve", "one branch-and-bound MILP solve"),
    ("cubis.batch", "a solve_batch call over all its instances"),
    ("cubis.inner", "one inner MILP/LP subproblem solve"),
    ("cubis.oracle", "one worst-case-type oracle evaluation"),
    ("cubis.solve", "a full CUBIS binary-search solve"),
    ("lp.solve", "one simplex LP solve"),
    ("pg.solve", "one projected-gradient nonconvex solve"),
    ("worst_type.solve", "one worst-type enumeration pass"),
];

/// True iff `name` is a registered counter name.
pub fn is_registered_counter(name: &str) -> bool {
    COUNTERS.binary_search_by(|(n, _)| n.cmp(&name)).is_ok()
}

/// True iff `name` is a registered span name.
pub fn is_registered_span(name: &str) -> bool {
    SPANS.binary_search_by(|(n, _)| n.cmp(&name)).is_ok()
}

/// Description for a registered counter name, if any.
pub fn counter_doc(name: &str) -> Option<&'static str> {
    COUNTERS
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .map(|i| COUNTERS[i].1)
}

/// Description for a registered span name, if any.
pub fn span_doc(name: &str) -> Option<&'static str> {
    SPANS
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .map(|i| SPANS[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_unique(table: &[(&str, &str)]) {
        for pair in table.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "registry must be sorted and duplicate-free: {:?} !< {:?}",
                pair[0].0,
                pair[1].0
            );
        }
    }

    #[test]
    fn names_are_sorted_and_unique() {
        assert_sorted_unique(COUNTERS);
        assert_sorted_unique(SPANS);
    }

    #[test]
    fn lookups_agree_with_tables() {
        for (name, doc) in COUNTERS {
            assert!(is_registered_counter(name));
            assert_eq!(counter_doc(name), Some(*doc));
        }
        for (name, doc) in SPANS {
            assert!(is_registered_span(name));
            assert_eq!(span_doc(name), Some(*doc));
        }
        assert!(!is_registered_counter("no.such.counter"));
        assert!(!is_registered_span("no.such.span"));
        assert!(counter_doc("no.such.counter").is_none());
        assert!(span_doc("no.such.span").is_none());
    }

    #[test]
    fn every_description_is_nonempty() {
        for (name, doc) in COUNTERS.iter().chain(SPANS) {
            assert!(!doc.is_empty(), "counter/span {name} lacks a description");
        }
    }
}
