//! The committed benchmark pins (`bench-pins.json` at the repo root).
//!
//! Two families of regression pins used to live as hard-coded constants
//! scattered between `tests/tests/bench.rs` and the harness:
//!
//! * the **pivot pin** — the `lp.pivots` ceiling the cold
//!   `large-t10-k16` solve must stay strictly below (the revised
//!   simplex's devex pricing beating the seed dense tableau), and
//! * the **step pins** — exact binary-search step counts per fixture
//!   seed, which the warm-start machinery promises never to change.
//!
//! Both now live in one reviewed JSON file read by `cubis-xtask bench
//! --smoke` *and* the tier-1 `bench.rs` gate, so a legitimate re-pin
//! (new fixtures, a deliberate ε change) is a single file edit with a
//! reviewable diff instead of a constants hunt. The file is parsed with
//! the trace JSON codec — same no-serde policy as `BENCH_solve.json`.

use cubis_trace::json::{self, JsonValue};
use std::path::{Path, PathBuf};

/// Version tag in `bench-pins.json`; bump on schema changes.
///
/// v2 adds the **serve pin** — the regression gates on the committed
/// `BENCH_serve.json` (latency ceiling, throughput floor, keep-alive
/// and persistent-tier floors) that `cubis-xtask ci` replays against
/// the reactor serving stack.
pub const PINS_FORMAT_VERSION: u64 = 2;

/// The cold-path simplex-pivot ceiling for one named shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PivotPin {
    /// The `BENCH_solve.json` shape the ceiling applies to.
    pub shape: String,
    /// Committed cold `lp.pivots` must stay strictly below this.
    pub max_cold_lp_pivots: u64,
}

/// One pinned binary-search step count for a fixture workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPin {
    /// Workload generator seed.
    pub seed: u64,
    /// Number of targets `T`.
    pub targets: usize,
    /// Defender resources `R`.
    pub resources: f64,
    /// Uncertainty width factor `δ`.
    pub delta: f64,
    /// Piecewise segments `K`.
    pub k: usize,
    /// Binary-search threshold `ε`.
    pub epsilon: f64,
    /// The exact step count (warm and cold agree by contract).
    pub steps: usize,
}

/// The regression gates on the committed `BENCH_serve.json`.
///
/// The floors are deliberately loose relative to the committed run
/// (an order of magnitude, not a few percent): they catch a *dead*
/// subsystem — keep-alive that never reuses, a persistent tier that
/// never answers, a p99 that exploded — not host-to-host jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePin {
    /// Committed run must use at least this many clients.
    pub min_clients: u64,
    /// Committed run must issue at least this many requests in total.
    pub min_requests: u64,
    /// Committed `p99_us` must stay at or below this.
    pub max_p99_us: u64,
    /// Committed `throughput_rps` must stay at or above this.
    pub min_throughput_rps: f64,
    /// Committed `keepalive_reused` must stay at or above this.
    pub min_keepalive_reused: u64,
    /// Committed `tier2_hits` must stay at or above this (the
    /// persistent tier actually answered requests).
    pub min_tier2_hits: u64,
}

/// The whole pin file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPins {
    /// Schema version ([`PINS_FORMAT_VERSION`]).
    pub format_version: u64,
    /// The simplex-pivot ceiling.
    pub pivot_pin: PivotPin,
    /// The per-seed step pins.
    pub step_pins: Vec<StepPin>,
    /// The serve-layer gates.
    pub serve_pin: ServePin,
}

impl BenchPins {
    /// The committed location: `<repo-root>/bench-pins.json`, resolved
    /// relative to this crate's manifest directory.
    pub fn default_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-pins.json")
    }

    /// Load and validate pins from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&src)
    }

    /// Parse (trace JSON codec) and structurally validate.
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        let v = json::parse(src).map_err(|e| format!("bench pins: {e}"))?;
        let format_version = v
            .get("format_version")
            .and_then(JsonValue::as_u64)
            .ok_or("bench pins: missing `format_version`")?;
        if format_version != PINS_FORMAT_VERSION {
            return Err(format!(
                "bench pins: format_version {format_version} (expected {PINS_FORMAT_VERSION})"
            ));
        }
        let pp = v.get("pivot_pin").ok_or("bench pins: missing `pivot_pin`")?;
        let pivot_pin = PivotPin {
            shape: pp
                .get("shape")
                .and_then(JsonValue::as_str)
                .ok_or("pivot_pin: missing `shape`")?
                .to_string(),
            max_cold_lp_pivots: pp
                .get("max_cold_lp_pivots")
                .and_then(JsonValue::as_u64)
                .ok_or("pivot_pin: missing `max_cold_lp_pivots`")?,
        };
        let step_pins = v
            .get("step_pins")
            .and_then(JsonValue::as_arr)
            .ok_or("bench pins: missing `step_pins` array")?
            .iter()
            .map(StepPin::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if step_pins.is_empty() {
            return Err("bench pins: empty `step_pins`".into());
        }
        let serve_pin =
            ServePin::from_json(v.get("serve_pin").ok_or("bench pins: missing `serve_pin`")?)?;
        Ok(Self { format_version, pivot_pin, step_pins, serve_pin })
    }
}

impl ServePin {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("serve pin: missing or non-integer `{key}`"))
        };
        let pin = Self {
            min_clients: u("min_clients")?,
            min_requests: u("min_requests")?,
            max_p99_us: u("max_p99_us")?,
            min_throughput_rps: v
                .get("min_throughput_rps")
                .and_then(JsonValue::as_f64)
                .ok_or("serve pin: missing or non-numeric `min_throughput_rps`")?,
            min_keepalive_reused: u("min_keepalive_reused")?,
            min_tier2_hits: u("min_tier2_hits")?,
        };
        if pin.min_clients == 0 || pin.min_requests == 0 || pin.max_p99_us == 0 {
            return Err("serve pin: degenerate gate (a zero floor/ceiling pins nothing)".into());
        }
        if !(pin.min_throughput_rps > 0.0) {
            return Err("serve pin: min_throughput_rps must be positive".into());
        }
        Ok(pin)
    }

    /// Gate a serve report against these pins; `Err` names the first
    /// violated gate.
    pub fn check(&self, report: &crate::ServeBenchReport) -> Result<(), String> {
        if report.clients < self.min_clients {
            return Err(format!(
                "serve pin: {} client(s), pinned floor {}",
                report.clients, self.min_clients
            ));
        }
        if report.requests < self.min_requests {
            return Err(format!(
                "serve pin: {} request(s), pinned floor {}",
                report.requests, self.min_requests
            ));
        }
        if report.p99_us > self.max_p99_us {
            return Err(format!(
                "serve pin: p99 {}us over the pinned ceiling {}us",
                report.p99_us, self.max_p99_us
            ));
        }
        if report.throughput_rps < self.min_throughput_rps {
            return Err(format!(
                "serve pin: {:.1} req/s under the pinned floor {:.1}",
                report.throughput_rps, self.min_throughput_rps
            ));
        }
        if report.keepalive_reused < self.min_keepalive_reused {
            return Err(format!(
                "serve pin: {} keep-alive reuse(s), pinned floor {}",
                report.keepalive_reused, self.min_keepalive_reused
            ));
        }
        if report.tier2_hits < self.min_tier2_hits {
            return Err(format!(
                "serve pin: {} persistent-tier hit(s), pinned floor {}",
                report.tier2_hits, self.min_tier2_hits
            ));
        }
        Ok(())
    }
}

impl StepPin {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("step pin: missing or non-integer `{key}`"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("step pin: missing or non-numeric `{key}`"))
        };
        let pin = Self {
            seed: u("seed")?,
            targets: u("targets")? as usize,
            resources: f("resources")?,
            delta: f("delta")?,
            k: u("k")? as usize,
            epsilon: f("epsilon")?,
            steps: u("steps")? as usize,
        };
        if pin.targets == 0 || pin.k == 0 || pin.epsilon <= 0.0 || pin.steps == 0 {
            return Err(format!("step pin seed {}: degenerate parameters", pin.seed));
        }
        Ok(pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_pins_load_and_cover_the_pivot_shape() {
        let pins = BenchPins::load(&BenchPins::default_path()).expect("committed bench-pins.json");
        assert_eq!(pins.format_version, PINS_FORMAT_VERSION);
        assert_eq!(pins.pivot_pin.shape, "large-t10-k16");
        assert!(pins.pivot_pin.max_cold_lp_pivots > 0);
        assert!(pins.step_pins.len() >= 4);
        // The smoke shape's seed must be pinned: the ci gate replays it.
        assert!(pins.step_pins.iter().any(|p| p.seed == 7));
        // The serve gates must demand the scaled run the ISSUE pinned.
        assert!(pins.serve_pin.min_clients >= 1000);
        assert!(pins.serve_pin.min_requests >= 50_000);
        assert!(pins.serve_pin.min_tier2_hits >= 1);
    }

    #[test]
    fn committed_serve_pin_accepts_the_committed_serve_report() {
        let pins = BenchPins::load(&BenchPins::default_path()).expect("committed bench-pins.json");
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
        let report = crate::ServeBenchReport::from_json_str(
            &std::fs::read_to_string(&path).expect("committed BENCH_serve.json"),
        )
        .expect("committed serve report parses");
        pins.serve_pin.check(&report).expect("committed report passes its own pins");
    }

    #[test]
    fn serve_pin_gates_fire_on_regressions() {
        let pin = ServePin {
            min_clients: 1000,
            min_requests: 50_000,
            max_p99_us: 500_000,
            min_throughput_rps: 100.0,
            min_keepalive_reused: 10_000,
            min_tier2_hits: 1,
        };
        let good = crate::ServeBenchReport {
            format_version: crate::SERVE_FORMAT_VERSION,
            clients: 1000,
            requests_per_client: 50,
            duplicate_rate: 0.6,
            seed: 42,
            requests: 50_000,
            cache_hits: 30_000,
            tier1_hits: 29_000,
            tier2_hits: 1_000,
            cache_misses: 19_000,
            rejected: 900,
            transport_errors: 100,
            retries_429: 400,
            keepalive_reused: 48_000,
            hit_rate: 30_000.0 / 49_000.0,
            throughput_rps: 2_000.0,
            p50_us: 900,
            p95_us: 40_000,
            p99_us: 120_000,
        };
        pin.check(&good).unwrap();
        let mut bad = good.clone();
        bad.p99_us = 600_000;
        assert!(pin.check(&bad).unwrap_err().contains("p99"));
        let mut bad = good.clone();
        bad.throughput_rps = 50.0;
        assert!(pin.check(&bad).unwrap_err().contains("req/s"));
        let mut bad = good.clone();
        bad.tier2_hits = 0;
        assert!(pin.check(&bad).unwrap_err().contains("persistent-tier"));
        let mut bad = good;
        bad.keepalive_reused = 0;
        assert!(pin.check(&bad).unwrap_err().contains("keep-alive"));
    }

    #[test]
    fn malformed_pins_are_rejected() {
        assert!(BenchPins::from_json_str("").is_err());
        assert!(BenchPins::from_json_str("{}").is_err());
        let serve =
            r#""serve_pin": {"min_clients": 1000, "min_requests": 50000, "max_p99_us": 500000,
                "min_throughput_rps": 100.0, "min_keepalive_reused": 1, "min_tier2_hits": 1}"#;
        // Wrong version.
        assert!(BenchPins::from_json_str(&format!(
            r#"{{"format_version": 99, "pivot_pin": {{"shape": "x", "max_cold_lp_pivots": 1}}, "step_pins": [], {serve}}}"#
        ))
        .is_err());
        // Empty step pins.
        assert!(BenchPins::from_json_str(&format!(
            r#"{{"format_version": 2, "pivot_pin": {{"shape": "x", "max_cold_lp_pivots": 1}}, "step_pins": [], {serve}}}"#
        ))
        .is_err());
        // Missing serve pin entirely.
        let step = r#"{"seed": 7, "targets": 3, "resources": 1.0, "delta": 0.1, "k": 8, "epsilon": 0.001, "steps": 11}"#;
        assert!(BenchPins::from_json_str(&format!(
            r#"{{"format_version": 2, "pivot_pin": {{"shape": "x", "max_cold_lp_pivots": 1}}, "step_pins": [{step}]}}"#
        ))
        .unwrap_err()
        .contains("serve_pin"));
    }
}
