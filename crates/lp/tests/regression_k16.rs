//! Regression: a CUBIS node LP (T = 4, K = 16) on which the simplex
//! declared optimality at a point violating a fill-order row by exactly
//! one segment width (1/16). Captured via CUBIS_LP_DUMP.

use cubis_lp::{parse_dump, solve, LpOptions, LpStatus};

#[test]
fn k16_node_lp_solves_cleanly() {
    let text = include_str!("data_fail_lp_k16.txt");
    let p = parse_dump(text).expect("parse dump");
    let sol = solve(&p, &LpOptions::default()).expect("no numerical breakdown");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(p.max_violation(&sol.x) < 1e-6, "violation {}", p.max_violation(&sol.x));
}
