//! Server counters, gauges, and the latency histogram behind
//! `GET /metrics`.
//!
//! Everything is a `SeqCst` atomic — scrapes race with workers by
//! design and per-metric consistency is all the text format promises.
//! Solver-side effort (probe counts, span timings) is not duplicated
//! here: the server installs a [`cubis_trace::CounterSetRecorder`] as
//! the solve recorder, and [`render`](ServerMetrics::render) appends
//! that recorder's totals after the server's own section, so one scrape
//! shows both layers of the system.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use cubis_trace::CounterSetRecorder;

/// Upper bounds (microseconds) of the latency histogram buckets; the
/// last bucket is unbounded.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn observe(&self, duration: std::time::Duration) {
        let us = duration.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
        self.total_us.fetch_add(us, Ordering::SeqCst);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Upper-bound estimate of the `q`-quantile in microseconds (the
    /// bound of the first bucket whose cumulative count reaches `q`),
    /// or `None` with no observations.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::SeqCst);
            if cumulative >= rank {
                return Some(LATENCY_BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    fn render_into(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::SeqCst);
            let le = LATENCY_BUCKET_BOUNDS_US
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_string());
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{name}_sum_us {}\n",
            self.total_us.load(Ordering::SeqCst)
        ));
        out.push_str(&format!("{name}_count {}\n", self.count()));
    }
}

/// All server-side metrics, shared between the acceptor, the workers,
/// and the `/metrics` renderer.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests accepted and parsed, by any method/path.
    pub requests_total: AtomicU64,
    /// Solve requests answered 200 from the cache.
    pub cache_hits: AtomicU64,
    /// Solve requests that went to the solver.
    pub cache_misses: AtomicU64,
    /// Requests rejected 429 (admission queue full).
    pub rejected_queue_full: AtomicU64,
    /// Requests rejected 503 (server draining).
    pub rejected_draining: AtomicU64,
    /// Solves that hit their deadline (504).
    pub deadline_exceeded: AtomicU64,
    /// Requests rejected 4xx (malformed, unknown route, invalid
    /// instance).
    pub client_errors: AtomicU64,
    /// Solver-side failures answered 500.
    pub server_errors: AtomicU64,
    /// Gauge: jobs currently queued.
    pub queue_depth: AtomicU64,
    /// Gauge: jobs currently being solved by workers.
    pub in_flight: AtomicU64,
    /// Gauge: 1 once graceful shutdown has begun.
    pub draining: AtomicU64,
    /// End-to-end solve latency (dequeue → response written).
    pub solve_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Render the `/metrics` text body: server counters and gauges,
    /// the latency histogram, then the solver-side trace counters and
    /// span aggregates from `trace`.
    ///
    /// Every counter in [`cubis_trace::names::COUNTERS`] is emitted
    /// even at zero, so the scrape's metric set is stable from boot —
    /// dashboards and rate() queries never see series pop into
    /// existence at first increment. Observed counters missing from
    /// the registry are still rendered (hiding data would be worse
    /// than the drift, which `cubis-xtask analyze` flags as TRC01).
    pub fn render(&self, trace: &CounterSetRecorder) -> String {
        let mut out = String::new();
        let counters: [(&str, &AtomicU64); 11] = [
            ("cubis_serve_requests_total", &self.requests_total),
            ("cubis_serve_cache_hits", &self.cache_hits),
            ("cubis_serve_cache_misses", &self.cache_misses),
            ("cubis_serve_rejected_queue_full", &self.rejected_queue_full),
            ("cubis_serve_rejected_draining", &self.rejected_draining),
            ("cubis_serve_deadline_exceeded", &self.deadline_exceeded),
            ("cubis_serve_client_errors", &self.client_errors),
            ("cubis_serve_server_errors", &self.server_errors),
            ("cubis_serve_queue_depth", &self.queue_depth),
            ("cubis_serve_in_flight", &self.in_flight),
            ("cubis_serve_draining", &self.draining),
        ];
        for (name, value) in counters {
            out.push_str(&format!("{name} {}\n", value.load(Ordering::SeqCst)));
        }
        self.solve_latency
            .render_into(&mut out, "cubis_serve_latency_us");
        let mut totals: BTreeMap<String, u64> = trace.counter_totals().into_iter().collect();
        for &(name, _) in cubis_trace::names::COUNTERS {
            totals.entry(name.to_string()).or_insert(0);
        }
        for (name, total) in &totals {
            out.push_str(&format!("cubis_trace_counter{{name=\"{name}\"}} {total}\n"));
        }
        for (name, agg) in trace.span_aggregates() {
            out.push_str(&format!(
                "cubis_trace_span_ns{{name=\"{name}\"}} count {} total {}\n",
                agg.count, agg.total_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for us in [50u64, 200, 200, 400, 900, 20_000] {
            h.observe(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        // Ranks: q=0.5 → rank 3 → cumulative reaches 3 in the ≤250
        // bucket (50, 200, 200).
        assert_eq!(h.quantile_us(0.5), Some(250));
        assert_eq!(h.quantile_us(1.0), Some(25_000));
        assert_eq!(h.quantile_us(0.0), Some(100));
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_secs(10));
        assert_eq!(h.quantile_us(0.5), Some(u64::MAX));
        let mut text = String::new();
        h.render_into(&mut text, "lat");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn render_includes_server_and_trace_sections() {
        let m = ServerMetrics::default();
        m.requests_total.fetch_add(3, Ordering::SeqCst);
        m.cache_hits.fetch_add(1, Ordering::SeqCst);
        m.solve_latency.observe(Duration::from_micros(123));
        let trace = CounterSetRecorder::default();
        use cubis_trace::{Event, Recorder};
        trace.record(Event::Counter {
            name: "cubis.probe".to_string(),
            delta: 7,
        });
        let text = m.render(&trace);
        assert!(text.contains("cubis_serve_requests_total 3"));
        assert!(text.contains("cubis_serve_cache_hits 1"));
        assert!(text.contains("cubis_serve_latency_us_count 1"));
        assert!(text.contains("cubis_trace_counter{name=\"cubis.probe\"} 7"));
    }

    #[test]
    fn render_pre_populates_every_registered_counter() {
        // No solve has run, yet the full registered series set is
        // present at zero — the scrape shape never depends on traffic.
        let text = ServerMetrics::default().render(&CounterSetRecorder::default());
        for &(name, _) in cubis_trace::names::COUNTERS {
            assert!(
                text.contains(&format!("cubis_trace_counter{{name=\"{name}\"}} 0")),
                "registered counter {name:?} missing from a cold scrape:\n{text}"
            );
        }
    }
}
