//! Closing the data loop: learn SUQR weights (and their uncertainty)
//! from observed attacks, then patrol robustly against the learned box.
//!
//! The paper says interval sizes "could be specified based on the
//! available data for learning" — this example does exactly that with
//! a maximum-likelihood fit plus a bootstrap confidence box, and shows
//! how the robust and point defenders converge as data accumulates.
//!
//! ```sh
//! cargo run --release --bin learned_intervals
//! ```

use cubis_behavior::{
    attack_distribution, bootstrap_box, fit_suqr, AttackDataset, BoundConvention, FitOptions,
    Suqr, SuqrWeights, UncertainSuqr,
};
use cubis_core::{Cubis, DpInner, RobustProblem};
use cubis_game::GameGenerator;

fn main() {
    let game = GameGenerator::new(7).generate(6, 2.0);
    let truth = SuqrWeights::new(-6.0, 0.8, 0.4);
    println!("ground-truth attacker: w = ({}, {}, {})\n", truth.w1, truth.w2, truth.w3);
    println!(
        "{:>7} | {:>24} | {:>10} | {:>14} | {:>13} | {:>14} | {:>13}",
        "n obs", "fitted w (MLE)", "box width", "robust(truth)", "point(truth)", "robust(worst)", "point(worst)"
    );
    println!("{}", "-".repeat(118));

    let fit_opts = FitOptions { max_iters: 200, ..Default::default() };
    for n in [25usize, 100, 400, 1600] {
        let data = AttackDataset::synthetic(&game, truth, n, 99);
        let w_hat = fit_suqr(&game, &data, &fit_opts);
        let weight_box = bootstrap_box(&game, &data, 12, 0.1, 5, &fit_opts);
        let width = weight_box.w1.width() + weight_box.w2.width() + weight_box.w3.width();

        // Robust plan on the learned box; point plan on the MLE.
        let model =
            UncertainSuqr::from_game(&game, weight_box, 0.0, BoundConvention::ExactInterval);
        let p = RobustProblem::new(&game, &model);
        let x_robust = Cubis::new(DpInner::new(80)).with_epsilon(1e-3).solve(&p).unwrap().x;
        let x_point =
            cubis_solvers::solve_point_qr(&game, &Suqr::new(w_hat), 80, 1e-3).unwrap();

        // Both evaluated against the REAL attacker (which neither knows).
        let eval = |x: &[f64]| {
            let q = attack_distribution(&Suqr::new(truth), &game, x);
            game.expected_defender_utility(x, &q)
        };
        println!(
            "{n:>7} | ({:>6.2}, {:>5.2}, {:>5.2}) | {width:>10.2} | {:>14.3} | {:>13.3} | {:>14.3} | {:>13.3}",
            w_hat.w1,
            w_hat.w2,
            w_hat.w3,
            eval(&x_robust),
            eval(&x_point),
            p.worst_case(&x_robust).utility,
            p.worst_case(&x_point).utility,
        );
    }
    println!(
        "\nAs n grows the bootstrap box tightens (~1/sqrt n) and the two plans\n\
         converge. The guarantee robustness buys is the worst-in-box columns:\n\
         when data is scarce the point plan can be blindsided by models its own\n\
         confidence box still allows, while the robust plan is insured against\n\
         all of them (see experiment F7 for the multi-seed picture)."
    );
}
