//! Regenerates F4 (see DESIGN.md §4). Set CUBIS_FULL=1 for the
//! paper-scale sweep.

use cubis_eval::experiments::Profile;

fn main() {
    let report = cubis_eval::experiments::bound_k::run(Profile::from_env());
    report.expect("experiment failed").print();
}
