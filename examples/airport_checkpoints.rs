//! Airport-checkpoint scenario (the ARMOR/LAX setting that launched
//! deployed security games): few resources, strongly asymmetric
//! terminals, and an adversary whose rationality level is itself
//! uncertain.
//!
//! Here the uncertainty is expressed on the *QR precision* λ rather
//! than on SUQR weights: the defender only knows `λ ∈ [λ_lo, λ_hi]`
//! ([`UncertainQr`]), demonstrating that CUBIS consumes any
//! interval-valued behavioral model, not just SUQR.
//!
//! ```sh
//! cargo run --release --bin airport_checkpoints
//! ```

use cubis_behavior::{Qr, UncertainQr};
use cubis_core::{Cubis, MilpInner, RobustProblem};
use cubis_game::{SecurityGame, TargetPayoffs};

fn main() {
    // Eight terminals, two canine units. Values from the ARMOR-style
    // setting: high-traffic terminals are worth more to both sides.
    let game = SecurityGame::new(
        vec![
            TargetPayoffs::new(6.0, -9.0, 9.0, -5.0), // international hub
            TargetPayoffs::new(5.0, -7.0, 7.0, -4.0),
            TargetPayoffs::new(4.0, -5.0, 5.5, -4.0),
            TargetPayoffs::new(3.0, -4.0, 4.0, -3.0),
            TargetPayoffs::new(3.0, -3.5, 3.5, -3.0),
            TargetPayoffs::new(2.0, -2.5, 2.5, -2.0),
            TargetPayoffs::new(1.5, -2.0, 2.0, -2.0),
            TargetPayoffs::new(1.0, -1.5, 1.5, -1.0), // commuter wing
        ],
        2.0,
    );

    println!("Airport checkpoints: 8 terminals, 2 canine units");
    println!("attacker rationality λ known only as an interval\n");
    println!(
        "{:>16} | {:>10} | {:>10} | {:>10}",
        "λ interval", "CUBIS wc", "ORIGAMI wc", "mid-λ wc"
    );
    println!("{}", "-".repeat(56));

    for (lo, hi) in [(0.0, 2.0), (0.2, 1.2), (0.4, 0.8), (0.6, 0.6)] {
        let model = UncertainQr::new(lo, hi);
        let p = RobustProblem::new(&game, &model);
        let sol = Cubis::new(MilpInner::new(24)).with_epsilon(1e-3).solve(&p).unwrap();

        // Baselines evaluated against the same adversarial λ interval.
        let origami = cubis_solvers::solve_origami(&game);
        let mid = cubis_solvers::solve_point_qr(&game, &Qr::new(0.5 * (lo + hi)), 100, 1e-3)
            .unwrap();
        println!(
            "{:>16} | {:>+10.3} | {:>+10.3} | {:>+10.3}",
            format!("[{lo:.1}, {hi:.1}]"),
            sol.worst_case,
            p.worst_case(&origami).utility,
            p.worst_case(&mid).utility,
        );
    }

    println!(
        "\nNote: with a degenerate interval (λ known exactly) the robust\n\
         and midpoint rows coincide — the price of robustness vanishes\n\
         with the uncertainty, which is the paper's selling point over\n\
         always-worst-case approaches."
    );
}
