//! Parallel branch-and-bound: a work-sharing node pool over rayon.
//!
//! Workers pull the best-bound node from a shared heap, evaluate it
//! (each LP solve is independent), and push children back. A single
//! incumbent is shared under a mutex; its score is mirrored in an atomic
//! so pruning checks don't need the lock. Termination uses an
//! outstanding-node counter: the search is complete when the heap is
//! empty *and* no worker holds a node.
//!
//! The search is exact (same pruning rules as the sequential code) but
//! node processing order — and therefore node counts — are
//! nondeterministic across runs.

use crate::branch::{
    evaluate_node, finish, gap_threshold, normalize, BbTrace, MilpError, MilpOptions,
    MilpSolution, MilpStatus, Node, NodeOutcome,
};
use crate::MilpProblem;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Shared search state.
struct Shared {
    heap: Mutex<BinaryHeap<Node>>,
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    /// Maximize-normalized incumbent score, as f64 bits (monotone CAS).
    inc_score_bits: AtomicU64,
    /// Nodes in the heap or currently being evaluated.
    outstanding: AtomicUsize,
    nodes: AtomicUsize,
    lp_iterations: AtomicUsize,
    node_limit_hit: AtomicBool,
    unbounded: AtomicBool,
    /// Target certificate reached (early sign termination).
    target_done: AtomicBool,
    error: Mutex<Option<MilpError>>,
    /// Largest pruned/abandoned bound (bits of max-normalized f64), for
    /// final gap reporting.
    best_bound_bits: AtomicU64,
}

fn load_f64(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Acquire))
}

/// Monotonically raise an atomic f64 (used for scores where larger wins).
fn raise_f64(a: &AtomicU64, v: f64) {
    let mut cur = a.load(Ordering::Acquire);
    loop {
        if f64::from_bits(cur) >= v {
            return;
        }
        match a.compare_exchange_weak(cur, v.to_bits(), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

pub(crate) fn solve_parallel(
    prob: &MilpProblem,
    opts: &MilpOptions,
    trace: Option<&BbTrace>,
) -> Result<MilpSolution, MilpError> {
    let sense = prob.lp.sense();
    let shared = Shared {
        heap: Mutex::new(BinaryHeap::new()),
        incumbent: Mutex::new(None),
        inc_score_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        outstanding: AtomicUsize::new(1),
        nodes: AtomicUsize::new(0),
        lp_iterations: AtomicUsize::new(0),
        node_limit_hit: AtomicBool::new(false),
        unbounded: AtomicBool::new(false),
        target_done: AtomicBool::new(false),
        error: Mutex::new(None),
        best_bound_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
    };
    if let Some(ws) = &opts.warm_start {
        if prob.max_violation(ws) <= 1e-7 {
            let obj = prob.lp.objective_value(ws);
            raise_f64(&shared.inc_score_bits, normalize(sense, obj));
            *shared.incumbent.lock() = Some((obj, ws.clone()));
        }
    }
    shared
        .heap
        .lock()
        .push(Node { fixes: Vec::new(), score: f64::INFINITY, depth: 0, basis: None });

    let workers = opts.threads.max(1);
    rayon::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| worker_loop(prob, opts, &shared, trace));
        }
    });

    if let Some(e) = shared.error.lock().take() {
        return Err(e);
    }
    if shared.unbounded.load(Ordering::Acquire) {
        return Ok(MilpSolution {
            status: MilpStatus::Unbounded,
            objective: f64::NAN,
            x: vec![f64::NAN; prob.lp.num_vars()],
            nodes: shared.nodes.load(Ordering::Acquire),
            lp_iterations: shared.lp_iterations.load(Ordering::Acquire),
            bound: f64::NAN,
        });
    }
    let incumbent = shared.incumbent.lock().take();
    let inc_score = load_f64(&shared.inc_score_bits);
    finish(
        prob,
        sense,
        incumbent,
        inc_score,
        load_f64(&shared.best_bound_bits),
        shared.nodes.load(Ordering::Acquire),
        shared.lp_iterations.load(Ordering::Acquire),
        shared.node_limit_hit.load(Ordering::Acquire),
        opts.target.is_some(),
    )
}

fn worker_loop(
    prob: &MilpProblem,
    opts: &MilpOptions,
    shared: &Shared,
    trace: Option<&BbTrace>,
) {
    let mut my_nodes = 0u64;
    worker_loop_inner(prob, opts, shared, trace, &mut my_nodes);
    if let Some(t) = trace {
        t.worker_nodes.lock().push(my_nodes);
    }
}

fn worker_loop_inner(
    prob: &MilpProblem,
    opts: &MilpOptions,
    shared: &Shared,
    trace: Option<&BbTrace>,
    my_nodes: &mut u64,
) {
    let sense = prob.lp.sense();
    // Each worker owns a simplex engine; nodes it evaluates reuse that
    // engine's canonical form and (where the basis matches) its live
    // factorization. Warm bases travel with the nodes themselves, so
    // work stealing keeps its restart no matter which worker solved the
    // parent.
    let mut engine = cubis_lp::SimplexEngine::new(&prob.lp);
    let target_score = opts.target.map(|t| normalize(sense, t));
    let hint_score = opts.bound_hint.map(|b| normalize(sense, b));
    loop {
        if shared.error.lock().is_some()
            || shared.unbounded.load(Ordering::Acquire)
            || shared.node_limit_hit.load(Ordering::Acquire)
            || shared.target_done.load(Ordering::Acquire)
        {
            return;
        }
        // Try to take a node; `outstanding` already counts it while queued.
        let node = shared.heap.lock().pop();
        let Some(mut node) = node else {
            if shared.outstanding.load(Ordering::Acquire) == 0 {
                return; // search complete
            }
            std::thread::yield_now();
            continue;
        };

        // Same hint clamp as the sequential loop: a proven external
        // bound caps every parent bound (NaN hints fail the `<`).
        if let Some(h) = hint_score {
            if h < node.score {
                node.score = h;
            }
        }
        let inc_score = load_f64(&shared.inc_score_bits);
        if let Some(ts) = target_score {
            if inc_score >= ts || node.score < ts {
                // Certificate either way: target met, or provably unmeetable.
                raise_f64(&shared.best_bound_bits, node.score.min(inc_score.max(ts)));
                shared.target_done.store(true, Ordering::Release);
                shared.outstanding.fetch_sub(1, Ordering::AcqRel);
                return;
            }
        }
        if node.score <= inc_score + gap_threshold(opts, inc_score) {
            raise_f64(&shared.best_bound_bits, inc_score);
            // Everything left in the heap is ≤ this bound: drain it.
            let drained: usize = {
                let mut h = shared.heap.lock();
                let k = h.len();
                h.clear();
                k
            };
            shared.outstanding.fetch_sub(1 + drained, Ordering::AcqRel);
            continue;
        }
        let n = shared.nodes.fetch_add(1, Ordering::AcqRel);
        if n >= opts.max_nodes {
            shared.node_limit_hit.store(true, Ordering::Release);
            raise_f64(&shared.best_bound_bits, node.score);
            shared.outstanding.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        *my_nodes += 1;

        match evaluate_node(&mut engine, prob, opts, &node, inc_score) {
            Err(e) => {
                *shared.error.lock() = Some(e);
                shared.outstanding.fetch_sub(1, Ordering::AcqRel);
                return;
            }
            Ok(eval) => {
                shared.lp_iterations.fetch_add(eval.lp_iterations, Ordering::AcqRel);
                match eval.outcome {
                    NodeOutcome::Pruned | NodeOutcome::Infeasible => {}
                    NodeOutcome::Unbounded => {
                        shared.unbounded.store(true, Ordering::Release);
                    }
                    NodeOutcome::Incumbent(obj, x) => {
                        let score = normalize(sense, obj);
                        {
                            let mut inc = shared.incumbent.lock();
                            let current = load_f64(&shared.inc_score_bits);
                            if score > current {
                                raise_f64(&shared.inc_score_bits, score);
                                *inc = Some((obj, x));
                                if let Some(t) = trace {
                                    t.incumbent_updates.fetch_add(1, Ordering::AcqRel);
                                }
                            }
                        }
                        if target_score.is_some_and(|ts| score >= ts) {
                            shared.target_done.store(true, Ordering::Release);
                        }
                    }
                    NodeOutcome::Branched(down, up) => {
                        let inc_now = load_f64(&shared.inc_score_bits);
                        let mut pushed = 0usize;
                        {
                            let mut h = shared.heap.lock();
                            if down.score > inc_now + opts.gap_abs {
                                h.push(down);
                                pushed += 1;
                            } else {
                                raise_f64(&shared.best_bound_bits, down.score);
                            }
                            if up.score > inc_now + opts.gap_abs {
                                h.push(up);
                                pushed += 1;
                            } else {
                                raise_f64(&shared.best_bound_bits, up.score);
                            }
                        }
                        shared.outstanding.fetch_add(pushed, Ordering::AcqRel);
                    }
                }
                shared.outstanding.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
}
