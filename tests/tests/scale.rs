//! Tier-1 property battery for the certified breakpoint-grid inner
//! solver ([`cubis_core::ScaleInner`]).
//!
//! The engine's contract is a *certificate*, not a promise of
//! exactness: every probe returns an achieved objective plus a slack
//! `gap_g` such that no grid-feasible allocation can exceed
//! `achieved + gap_g`. These tests hold it to that contract over 500
//! seeded instances against the exact grid DP, cross-check the MILP
//! on the same breakpoints (within the Lemma-1 linearization slack),
//! and pin the refinement law: doubling the grid resolution never
//! lowers the certified envelope and tightens the mean certificate.

use cubis_check::CheckInstance;
use cubis_core::problem::RobustProblem;
use cubis_core::{transform, DpInner, InnerSolver, MilpInner, ScaleInner};
use cubis_core::piecewise::PiecewiseLinear;

/// The probe utility used throughout: the midpoint of the instance's
/// utility range, matching the `inner-scale-vs-milp` fuzz oracle.
fn mid_c<M: cubis_behavior::IntervalChoiceModel>(p: &RobustProblem<'_, M>) -> f64 {
    let (lo, hi) = p.utility_range();
    lo + 0.5 * (hi - lo)
}

#[test]
fn five_hundred_seeded_instances_never_escape_their_certificate() {
    for seed in 0u64..500 {
        let inst = CheckInstance::generate(seed);
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let c = mid_c(&p);
        let (res, cert) = ScaleInner::new(inst.pp)
            .maximize_with_certificate(&p, c)
            .unwrap_or_else(|e| panic!("seed {seed}: scale failed: {e}"));
        let dp = DpInner::new(inst.pp)
            .maximize_g(&p, c)
            .unwrap_or_else(|e| panic!("seed {seed}: DP failed: {e}"));

        // Grid-feasible, so it can't beat the exact grid optimum…
        assert!(
            res.g_value <= dp.g_value + 1e-9,
            "seed {seed}: scale {} beats the exact grid DP {}",
            res.g_value,
            dp.g_value
        );
        // …and the certificate must cover the shortfall.
        assert!(
            res.g_value + cert.gap_g >= dp.g_value - 1e-9,
            "seed {seed}: scale {} + gap {:e} trails the DP {} — unsound certificate",
            res.g_value,
            cert.gap_g,
            dp.g_value
        );
        assert!(
            cert.gap_g >= 0.0 && cert.gap_c >= 0.0 && cert.gap_c.is_finite(),
            "seed {seed}: malformed certificate {cert:?}"
        );
        assert_eq!(
            res.gap.to_bits(),
            cert.gap_c.to_bits(),
            "seed {seed}: InnerResult.gap must be the certified c-unit slack"
        );
        // The allocation is a real strategy: within budget, in [0,1],
        // and the reported value is the true G there.
        let sum: f64 = res.x.iter().sum();
        assert!(sum <= inst.resources + 1e-9, "seed {seed}: Σx = {sum} > {}", inst.resources);
        assert!(
            res.x.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)),
            "seed {seed}: coverage out of [0,1]: {:?}",
            res.x
        );
        let g = transform::g_total(&p, &res.x, c);
        assert!(
            (g - res.g_value).abs() <= 1e-9,
            "seed {seed}: reported value {} is not the true G {}",
            res.g_value,
            g
        );
    }
}

#[test]
fn milp_on_the_same_breakpoints_stays_within_gap_plus_linearization_slack() {
    let mut checked = 0;
    for seed in 0u64..400 {
        let inst = CheckInstance::generate(seed);
        // MILP cost grows quickly with targets; the comparison is
        // size-independent, so bound the work like the fuzz oracle.
        if inst.num_targets() > 4 {
            continue;
        }
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let c = mid_c(&p);
        let (res, cert) = ScaleInner::new(inst.pp)
            .maximize_with_certificate(&p, c)
            .unwrap_or_else(|e| panic!("seed {seed}: scale failed: {e}"));
        let milp = MilpInner::new(inst.pp)
            .maximize_g(&p, c)
            .unwrap_or_else(|e| panic!("seed {seed}: MILP failed: {e}"));
        // Grid points are MILP-feasible with Ḡ = G there, so the scale
        // value is a lower bound on the MILP optimum…
        assert!(
            res.g_value <= milp.g_value + 1e-7,
            "seed {seed}: scale {} beats MILP {} on the same breakpoints",
            res.g_value,
            milp.g_value
        );
        // …while between breakpoints the linearized Ḡ may exceed the
        // true G by at most the Lemma-1 band, so the MILP optimum is
        // covered by certificate + 2·slack.
        let mut slack = 0.0f64;
        for i in 0..inst.num_targets() {
            let e1 = PiecewiseLinear::error_bound_estimate(inst.pp, |x| transform::f1(&p, i, x, c));
            let e2 = PiecewiseLinear::error_bound_estimate(inst.pp, |x| transform::f2(&p, i, x, c));
            slack += e1.max(e2);
        }
        assert!(
            milp.g_value <= res.g_value + cert.gap_g + 2.0 * slack + 1e-6,
            "seed {seed}: MILP {} escapes scale {} + gap {:e} + slack {:e}",
            milp.g_value,
            res.g_value,
            cert.gap_g,
            2.0 * slack
        );
        checked += 1;
        if checked == 80 {
            break;
        }
    }
    assert!(checked >= 40, "only {checked} instances were small enough — generator drifted?");
}

/// The refinement law behind `Auto` routing: `2·pp` samples every
/// `pp` grid point bitwise (`j/pp = 2j/2pp`), so the fine envelope is
/// the least concave majorant of a *superset* of points and can never
/// fall below the coarse one; and across the 500-instance battery the
/// certified gap must tighten substantially in aggregate.
#[test]
fn doubling_the_grid_resolution_tightens_the_certificate() {
    let mut coarse_total = 0.0f64;
    let mut fine_total = 0.0f64;
    for seed in 0u64..500 {
        let inst = CheckInstance::generate(seed);
        let game = inst.game();
        let model = inst.model(&game);
        let p = RobustProblem::new(&game, &model);
        let c = mid_c(&p);
        let (_, coarse) = ScaleInner::new(inst.pp)
            .maximize_with_certificate(&p, c)
            .unwrap_or_else(|e| panic!("seed {seed}: coarse scale failed: {e}"));
        let (_, fine) = ScaleInner::new(2 * inst.pp)
            .maximize_with_certificate(&p, c)
            .unwrap_or_else(|e| panic!("seed {seed}: fine scale failed: {e}"));
        // Generated resources are integral, so both budgets land on
        // the same coverage point and the envelopes are comparable.
        assert!(
            fine.envelope >= coarse.envelope - 1e-9,
            "seed {seed}: refinement lowered the envelope: {} < {}",
            fine.envelope,
            coarse.envelope
        );
        coarse_total += coarse.gap_g;
        fine_total += fine.gap_g;
    }
    assert!(
        fine_total <= 0.75 * coarse_total + 1e-9,
        "mean certified gap did not shrink under refinement: fine {fine_total} vs coarse {coarse_total}"
    );
}
