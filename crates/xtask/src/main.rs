//! Command-line entry point: `cargo run -p cubis-xtask -- <command>`.
//!
//! The command set lives in [`cubis_xtask::commands`] — usage text and
//! the dispatch table below are both generated from it, and a unit test
//! here asserts the two stay in lockstep.
//!
//! * `analyze [--root <dir>] [--changed] [--json <path|->]
//!   [--sarif <path|->] [--fix-baseline]` — run the static-analysis
//!   pass over the workspace and gate against the committed
//!   `analyze-baseline.json`: deny findings and unbaselined warn
//!   findings exit 1. `--changed` restricts findings to files touched
//!   per `git diff`/untracked; `--json`/`--sarif` write machine-readable
//!   reports (`-` for stdout); `--fix-baseline` rewrites the baseline
//!   from the current tree's warn findings.
//! * `rules` — print the rule table.
//! * `trace-report <journal.json>` — render a recorded solve journal
//!   (see the `cubis-trace` crate) as a per-phase time/count digest.
//! * `fuzz [--iters <n>] [--seed <u64>]` — the `cubis-check`
//!   differential-fuzz harness: seeded instances through the oracle
//!   registry; a violation is shrunk, written as a replayable JSON
//!   artifact and reported with the `CUBIS_CHECK_SEED=… fuzz` command
//!   that reproduces it. Setting `CUBIS_CHECK_SEED` replays that one
//!   case instead of fuzzing.
//! * `bench [--smoke] [--out <path>]` — the warm-vs-cold solve
//!   benchmark (`cubis_bench::harness`); writes `BENCH_solve.json` at
//!   the workspace root (or `--out`) and prints per-shape speedups.
//! * `loadgen [--smoke] [--clients <n>] [--requests <n>]
//!   [--duplicate-rate <f>] [--seed <u64>] [--data-dir <path>]
//!   [--out <path>]` — boots the `cubis-serve` server on an ephemeral
//!   port over a persistent cache dir, drives it with the keep-alive
//!   closed-loop load generator (the full run: 1000 clients × 50
//!   requests), replays a restart-survival probe (fresh server, same
//!   data dir, byte-identical persistent-tier answer demanded), gates
//!   the full run against `bench-pins.json`'s serve pins, and writes
//!   `BENCH_serve.json` (throughput, per-tier hit rates, keep-alive
//!   reuse, latency quantiles), validated before the write.
//! * `ci [--root <dir>]` — the single local pre-merge gate: chains
//!   `cargo fmt --check`, `cargo clippy --workspace --all-targets` with
//!   warnings denied, the analyze pass gated on the committed baseline
//!   (its JSON report written to `analyze-report.json` beside the
//!   `BENCH_*.json` artifacts), the fuzz smoke subset, a focused
//!   50-case fuzz of the breakpoint-grid oracles
//!   (`inner-scale-vs-milp`, `inner-scale-certificate`), a 50-case
//!   fuzz of the reactor parser-equivalence oracle, a scale smoke
//!   (the `huge-t1000` workload solved on the certified
//!   breakpoint-grid engine under a wall budget with its certificate
//!   gated), an in-process bench smoke (validated, not written), an
//!   in-process serve smoke (loadgen + restart survival, plus the
//!   committed `BENCH_serve.json` gated against its pins), a reactor
//!   smoke (a keep-alive burst on one connection with the reuse
//!   visible in `/metrics`), `cargo test -q`, `cargo doc --no-deps`
//!   with warnings denied, and `cargo test --doc`.
//!
//! The fuzz harness runs the `cubis-check` registry *plus* the
//! `cubis-serve-cache-vs-fresh` and
//! `cubis-serve-parser-incremental-vs-oneshot` oracles, passed through
//! the harness's extras extension point (the dependency arrow points
//! serve → check, so check cannot name the oracles itself).

use cubis_xtask::baseline::{self, Baseline, GateOutcome};
use cubis_xtask::{
    analyze_workspace_full, commands, find_workspace_root, report, rules::RULE_DOCS,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Dispatch table: one handler per [`commands::COMMANDS`] entry, same
/// order — enforced by `handler_table_matches_command_table` below.
const HANDLERS: &[(&str, fn(&[String]) -> ExitCode)] = &[
    ("analyze", cmd_analyze),
    ("rules", cmd_rules),
    ("trace-report", cmd_trace_report),
    ("fuzz", fuzz),
    ("bench", bench),
    ("loadgen", loadgen),
    ("ci", cmd_ci),
];

/// Oracles registered from outside the `cubis-check` crate (see the
/// crate docs above): the serve cache-vs-fresh check and the reactor
/// parser-equivalence check.
fn extra_oracles() -> Vec<cubis_check::Oracle> {
    vec![
        cubis_serve::cache_vs_fresh_oracle(),
        cubis_serve::parser_incremental_vs_oneshot_oracle(),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match HANDLERS.iter().find(|(name, _)| *name == cmd) {
        Some((_, run)) => run(&args),
        None => usage(&format!(
            "expected a subcommand: {}",
            commands::names_line()
        )),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("cubis-xtask: {err}");
    eprint!("{}", commands::usage_text());
    ExitCode::from(2)
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let root = match resolve_root(args) {
        Ok(root) => root,
        Err(e) => return usage(&e),
    };
    let path_flag = |name: &str| -> Result<Option<PathBuf>, String> {
        match args.iter().position(|a| a == name) {
            Some(pos) => args
                .get(pos + 1)
                .map(|p| Some(PathBuf::from(p)))
                .ok_or_else(|| format!("{name} requires a path argument (or `-` for stdout)")),
            None => Ok(None),
        }
    };
    let json_out = match path_flag("--json") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let sarif_out = match path_flag("--sarif") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let opts = AnalyzeOpts {
        changed_only: args.iter().any(|a| a == "--changed"),
        fix_baseline: args.iter().any(|a| a == "--fix-baseline"),
        json_out,
        sarif_out,
    };
    if opts.changed_only && opts.fix_baseline {
        return usage("--fix-baseline must see the whole tree; drop --changed");
    }
    analyze(&root, &opts)
}

/// Flags of one `analyze` invocation.
#[derive(Debug, Default)]
struct AnalyzeOpts {
    changed_only: bool,
    fix_baseline: bool,
    json_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
}

fn cmd_rules(_args: &[String]) -> ExitCode {
    for (id, doc) in RULE_DOCS {
        println!("{id:7} {doc}");
    }
    ExitCode::SUCCESS
}

fn cmd_trace_report(args: &[String]) -> ExitCode {
    match args.get(1) {
        Some(path) => trace_report(path),
        None => usage("trace-report requires a journal path"),
    }
}

fn cmd_ci(args: &[String]) -> ExitCode {
    match resolve_root(args) {
        Ok(root) => ci(&root),
        Err(e) => usage(&e),
    }
}

/// Parse `--iters`/`--seed`, honor `CUBIS_CHECK_SEED` replay, run the
/// harness and — on violation — drop the shrunk artifact next to the
/// run with the exact command line that replays it.
fn fuzz(args: &[String]) -> ExitCode {
    let flag = |name: &str| -> Result<Option<&String>, String> {
        match args.iter().position(|a| a == name) {
            Some(pos) => args
                .get(pos + 1)
                .map(Some)
                .ok_or_else(|| format!("{name} requires an argument")),
            None => Ok(None),
        }
    };
    // A replay seed pinpoints one case; run exactly that and nothing else.
    if let Ok(raw) = std::env::var(cubis_check::SEED_ENV) {
        let seed = match cubis_check::parse_seed(&raw) {
            Ok(s) => s,
            Err(e) => return usage(&format!("bad {}: {e}", cubis_check::SEED_ENV)),
        };
        println!("fuzz: replaying case {}", cubis_check::format_seed(seed));
        return match cubis_check::run_case_with(seed, &extra_oracles()) {
            Ok(checked) => {
                println!("fuzz: case passed ({checked} oracles checked)");
                ExitCode::SUCCESS
            }
            Err(failure) => report_failure(&failure),
        };
    }
    let iters = match flag("--iters") {
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => return usage(&format!("--iters must be a positive integer, got `{v}`")),
        },
        Ok(None) => 200,
        Err(e) => return usage(&e),
    };
    let seed = match flag("--seed") {
        Ok(Some(v)) => match cubis_check::parse_seed(v) {
            Ok(s) => s,
            Err(e) => return usage(&e),
        },
        Ok(None) => 42,
        Err(e) => return usage(&e),
    };
    let report =
        cubis_check::run_fuzz_with(&cubis_check::FuzzConfig { seed, iters }, &extra_oracles());
    println!(
        "fuzz: {} case(s) from master seed {}, {} oracle check(s)",
        report.cases_run,
        cubis_check::format_seed(seed),
        report.oracle_checks
    );
    match report.failure {
        None => {
            println!("fuzz: no oracle violations");
            ExitCode::SUCCESS
        }
        Some(failure) => report_failure(&failure),
    }
}

/// Run the warm-vs-cold benchmark and write `BENCH_solve.json`.
///
/// `--smoke` swaps in the tiny single-shape workload (the ci gate);
/// `--out <path>` overrides the default `<workspace-root>/BENCH_solve.json`.
fn bench(args: &[String]) -> ExitCode {
    use cubis_bench::harness;
    let smoke = args.iter().any(|a| a == "--smoke");
    let shapes = if smoke {
        harness::smoke_shapes()
    } else {
        harness::full_shapes()
    };
    println!(
        "bench: running {} shape(s){}",
        shapes.len(),
        if smoke { " (smoke)" } else { "" }
    );
    let report = match harness::run(&shapes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cubis-xtask bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke gate also audits the *committed* artifact against the
    // committed `bench-pins.json`: the pinned shape's cold pivot count
    // must stay below its ceiling, so a pricing regression can't hide
    // behind faster pivots — and a legitimate re-pin is one reviewed
    // edit of the pins file.
    if smoke {
        let root = match resolve_root(args) {
            Ok(r) => r,
            Err(e) => return usage(&e),
        };
        let pins = match cubis_bench::pins::BenchPins::load(&root.join("bench-pins.json")) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cubis-xtask bench: pin file check failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let committed = root.join("BENCH_solve.json");
        match std::fs::read_to_string(&committed)
            .map_err(|e| format!("cannot read {}: {e}", committed.display()))
            .and_then(|s| harness::BenchReport::from_json_str(&s))
        {
            Ok(pinned) => {
                let Some(shape) =
                    pinned.shapes.iter().find(|s| s.name == pins.pivot_pin.shape)
                else {
                    eprintln!(
                        "cubis-xtask bench: committed {} lacks shape {}",
                        committed.display(),
                        pins.pivot_pin.shape
                    );
                    return ExitCode::FAILURE;
                };
                if shape.cold.lp_pivots >= pins.pivot_pin.max_cold_lp_pivots {
                    eprintln!(
                        "cubis-xtask bench: {} cold lp_pivots {} has not dropped below the pinned ceiling {}",
                        pins.pivot_pin.shape,
                        shape.cold.lp_pivots,
                        pins.pivot_pin.max_cold_lp_pivots
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "bench: pivot pin ok ({} cold lp_pivots {} < pinned {})",
                    pins.pivot_pin.shape,
                    shape.cold.lp_pivots,
                    pins.pivot_pin.max_cold_lp_pivots
                );
            }
            Err(e) => {
                eprintln!("cubis-xtask bench: pivot pin check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for s in &report.shapes {
        println!(
            "bench: {:16} cold {:>9}ns  warm {:>9}ns  speedup {:.2}x  \
             (steps {}, grid builds cold {} warm {}, bb nodes cold {} warm {})",
            s.name,
            s.cold.wall_ns_median,
            s.warm.wall_ns_median,
            s.speedup(),
            s.warm.binary_steps,
            s.cold.binary_steps,
            s.warm.cold_builds,
            s.cold.bb_nodes,
            s.warm.bb_nodes,
        );
    }
    let out = match args.iter().position(|a| a == "--out") {
        Some(pos) => match args.get(pos + 1) {
            Some(p) => PathBuf::from(p),
            None => return usage("--out requires a path argument"),
        },
        None => {
            // The smoke run is a gate, not a recording: without an
            // explicit --out it must not clobber the committed
            // full-trajectory artifact with its single-shape report.
            if smoke {
                println!("bench: smoke report validated (pass --out <path> to keep it)");
                return ExitCode::SUCCESS;
            }
            match resolve_root(args) {
                Ok(root) => root.join("BENCH_solve.json"),
                Err(e) => return usage(&e),
            }
        }
    };
    match std::fs::write(&out, report.to_json_string()) {
        Ok(()) => {
            println!("bench: wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cubis-xtask bench: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// The loadgen configuration the `--smoke` preset and the ci gate use:
/// small enough for seconds, busy enough that the duplicate mix
/// produces cache hits and keep-alive reuse.
fn smoke_loadgen_config() -> cubis_serve::LoadgenConfig {
    cubis_serve::LoadgenConfig {
        clients: 2,
        requests_per_client: 8,
        duplicate_rate: 0.5,
        pool_size: 2,
        ..Default::default()
    }
}

/// The full (default) loadgen workload: the scaled run the committed
/// `BENCH_serve.json` and its pins describe — 1000 keep-alive clients,
/// 50 requests each, a duplicate-heavy mix over a pool larger than the
/// hot cache so the persistent tier answers requests mid-run.
fn full_loadgen_config() -> cubis_serve::LoadgenConfig {
    cubis_serve::LoadgenConfig {
        clients: 1000,
        requests_per_client: 50,
        duplicate_rate: 0.9,
        pool_size: 64,
        ..Default::default()
    }
}

/// Serve sizing for one loadgen run. The hot cache is deliberately
/// smaller than the duplicate pool: evictions push solutions down to
/// the persistent tier under `data_dir` and later duplicates pull them
/// back up, so tier-2 is exercised *during* the run, not only across
/// restarts. The queue is sized at half the client count so the
/// opening burst of a scaled run draws real `429 Retry-After`
/// pushback.
fn loadgen_serve_config(
    config: &cubis_serve::LoadgenConfig,
    data_dir: &Path,
) -> cubis_serve::ServeConfig {
    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 8);
    cubis_serve::ServeConfig {
        workers,
        queue_capacity: (config.clients / 2).clamp(64, 4096),
        cache_shards: 4,
        cache_capacity_per_shard: (config.pool_size / 8).max(2),
        data_dir: Some(data_dir.to_path_buf()),
        ..Default::default()
    }
}

/// POST the first pinned pool instance and return the full response —
/// the restart-survival reference: its body is the canonical answer
/// the persistent tier must reproduce byte-for-byte after a restart.
fn probe_pool_instance(
    addr: std::net::SocketAddr,
    config: &cubis_serve::LoadgenConfig,
) -> Result<cubis_serve::http::Response, String> {
    let pool = cubis_serve::loadgen::duplicate_pool(config.seed, config.pool_size);
    let inst = pool.first().ok_or("empty duplicate pool")?;
    let body = cubis_serve::SolveRequest {
        instance: inst.clone(),
        deadline_ms: None,
        policy: cubis_serve::RequestPolicy::Auto,
    }
    .to_json_string();
    let mut conn = cubis_serve::http::ClientConn::connect(addr, config.timeout)
        .map_err(|e| format!("probe connect: {e}"))?;
    let resp = conn
        .request("POST", "/v1/solve", &[], body.as_bytes())
        .map_err(|e| format!("probe request: {e}"))?;
    if resp.status != 200 {
        return Err(format!("probe answered {}: {}", resp.status, resp.body_text()));
    }
    Ok(resp)
}

/// Boot an in-process server over `data_dir`, run the closed-loop load
/// generator against it, and distill the outcome into a validated
/// report plus the probe body (the restart-survival reference).
fn run_loadgen(
    config: &cubis_serve::LoadgenConfig,
    data_dir: &Path,
) -> Result<(cubis_bench::ServeBenchReport, Vec<u8>), String> {
    let server = cubis_serve::start(loadgen_serve_config(config, data_dir))
        .map_err(|e| format!("cannot bind loadgen server: {e}"))?;
    let outcome = cubis_serve::loadgen::run(server.local_addr(), config);
    let probe = probe_pool_instance(server.local_addr(), config);
    server.shutdown();
    let probe = probe?;
    let q_us = |q: f64| {
        outcome
            .quantile(q)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    };
    let report = cubis_bench::ServeBenchReport {
        format_version: cubis_bench::SERVE_FORMAT_VERSION,
        clients: config.clients as u64,
        requests_per_client: config.requests_per_client as u64,
        duplicate_rate: config.duplicate_rate,
        seed: config.seed,
        requests: outcome.requests as u64,
        cache_hits: outcome.cache_hits as u64,
        tier1_hits: outcome.tier1_hits as u64,
        tier2_hits: outcome.tier2_hits as u64,
        cache_misses: outcome.cache_misses as u64,
        rejected: outcome.rejected as u64,
        transport_errors: outcome.transport_errors as u64,
        retries_429: outcome.retries_429 as u64,
        keepalive_reused: outcome.keepalive_reused as u64,
        hit_rate: outcome.hit_rate(),
        throughput_rps: outcome.throughput_rps(),
        p50_us: q_us(0.50),
        p95_us: q_us(0.95),
        p99_us: q_us(0.99),
    };
    report.validate()?;
    Ok((report, probe.body))
}

/// Reopen `data_dir` under a *fresh* server — empty hot cache, same
/// persistent log — and demand the probe instance comes back from the
/// persistent tier, byte-identical to the priming run's response.
fn check_restart_survival(
    config: &cubis_serve::LoadgenConfig,
    data_dir: &Path,
    reference: &[u8],
) -> Result<(), String> {
    let server = cubis_serve::start(loadgen_serve_config(config, data_dir))
        .map_err(|e| format!("cannot rebind the restarted server: {e}"))?;
    let resp = probe_pool_instance(server.local_addr(), config);
    server.shutdown();
    let resp = resp?;
    match resp.header("x-cubis-cache-tier") {
        Some("persistent") => {}
        other => {
            return Err(format!(
                "restart probe was served from tier {other:?}, not the persistent tier"
            ))
        }
    }
    if resp.body != reference {
        return Err(format!(
            "restart probe body diverges from the priming run ({} vs {} bytes)",
            resp.body.len(),
            reference.len()
        ));
    }
    Ok(())
}

/// Run the serve load benchmark and write `BENCH_serve.json`.
fn loadgen(args: &[String]) -> ExitCode {
    let flag = |name: &str| -> Result<Option<&String>, String> {
        match args.iter().position(|a| a == name) {
            Some(pos) => args
                .get(pos + 1)
                .map(Some)
                .ok_or_else(|| format!("{name} requires an argument")),
            None => Ok(None),
        }
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke { smoke_loadgen_config() } else { full_loadgen_config() };
    match flag("--clients") {
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n > 0 => config.clients = n,
            _ => return usage(&format!("--clients must be a positive integer, got `{v}`")),
        },
        Ok(None) => {}
        Err(e) => return usage(&e),
    }
    match flag("--requests") {
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n > 0 => config.requests_per_client = n,
            _ => return usage(&format!("--requests must be a positive integer, got `{v}`")),
        },
        Ok(None) => {}
        Err(e) => return usage(&e),
    }
    match flag("--duplicate-rate") {
        Ok(Some(v)) => match v.parse::<f64>() {
            Ok(r) if (0.0..=1.0).contains(&r) => config.duplicate_rate = r,
            _ => return usage(&format!("--duplicate-rate must be in [0, 1], got `{v}`")),
        },
        Ok(None) => {}
        Err(e) => return usage(&e),
    }
    match flag("--seed") {
        Ok(Some(v)) => match cubis_check::parse_seed(v) {
            Ok(s) => config.seed = s,
            Err(e) => return usage(&e),
        },
        Ok(None) => {}
        Err(e) => return usage(&e),
    }
    // The persistent tier's directory: an explicit `--data-dir` is
    // used as-is (pointing at a warm dir is the way to benchmark a
    // pre-primed cache); the default is a scratch dir wiped first so
    // the committed report always describes a cold start.
    let data_dir = match flag("--data-dir") {
        Ok(Some(p)) => PathBuf::from(p),
        Ok(None) => {
            let dir = std::env::temp_dir().join(format!("cubis-loadgen-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }
        Err(e) => return usage(&e),
    };
    println!(
        "loadgen: {} client(s) × {} request(s), duplicate rate {}, seed {}, data dir {}",
        config.clients,
        config.requests_per_client,
        config.duplicate_rate,
        cubis_check::format_seed(config.seed),
        data_dir.display()
    );
    let (report, reference) = match run_loadgen(&config, &data_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cubis-xtask loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "loadgen: {} request(s): {} hit ({} hot / {} persistent) / {} miss / {} rejected / \
         {} transport error(s)",
        report.requests,
        report.cache_hits,
        report.tier1_hits,
        report.tier2_hits,
        report.cache_misses,
        report.rejected,
        report.transport_errors
    );
    let successes = report.cache_hits + report.cache_misses;
    let tier_rate = |hits: u64| if successes == 0 { 0.0 } else { hits as f64 / successes as f64 };
    println!(
        "loadgen: hit rate {:.2} (tier-1 {:.2}, tier-2 {:.2}), keep-alive reused {}, \
         429 retries {}",
        report.hit_rate,
        tier_rate(report.tier1_hits),
        tier_rate(report.tier2_hits),
        report.keepalive_reused,
        report.retries_429
    );
    println!(
        "loadgen: {:.1} req/s, latency p50 {}us p95 {}us p99 {}us",
        report.throughput_rps, report.p50_us, report.p95_us, report.p99_us
    );
    // Restart survival is part of every loadgen run, smoke included: a
    // fresh server over the same data dir must answer the probe from
    // the persistent tier, byte-identically.
    match check_restart_survival(&config, &data_dir, &reference) {
        Ok(()) => println!("loadgen: restart survival ok (persistent tier, byte-identical)"),
        Err(e) => {
            eprintln!("cubis-xtask loadgen: restart survival FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The full run must clear the committed serve pins before it may
    // become the committed artifact.
    if !smoke {
        let root = match resolve_root(args) {
            Ok(r) => r,
            Err(e) => return usage(&e),
        };
        match cubis_bench::BenchPins::load(&root.join("bench-pins.json")) {
            Ok(pins) => {
                if let Err(e) = pins.serve_pin.check(&report) {
                    eprintln!("cubis-xtask loadgen: pinned serve gate FAILED: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "loadgen: serve pins ok (p99 {}us <= {}us, {:.1} req/s >= {:.1})",
                    report.p99_us,
                    pins.serve_pin.max_p99_us,
                    report.throughput_rps,
                    pins.serve_pin.min_throughput_rps
                );
            }
            Err(e) => {
                eprintln!("cubis-xtask loadgen: cannot load bench-pins.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let out = match args.iter().position(|a| a == "--out") {
        Some(pos) => match args.get(pos + 1) {
            Some(p) => PathBuf::from(p),
            None => return usage("--out requires a path argument"),
        },
        None => match resolve_root(args) {
            Ok(root) => root.join("BENCH_serve.json"),
            Err(e) => return usage(&e),
        },
    };
    match std::fs::write(&out, report.to_json_string()) {
        Ok(()) => {
            println!("loadgen: wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cubis-xtask loadgen: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// Print a shrunk failure, write its JSON artifact, return failure.
fn report_failure(failure: &cubis_check::CaseFailure) -> ExitCode {
    eprintln!("fuzz: oracle `{}` VIOLATED", failure.oracle);
    eprintln!("fuzz: {}", failure.detail);
    eprintln!("fuzz: shrunk to {:?}", failure.shrunk);
    let path = format!(
        "cubis-check-case-{}.json",
        cubis_check::format_seed(failure.case_seed)
    );
    match std::fs::write(&path, failure.artifact().to_json_string()) {
        Ok(()) => eprintln!("fuzz: artifact written to {path}"),
        Err(e) => eprintln!("fuzz: could not write artifact {path}: {e}"),
    }
    eprintln!("fuzz: replay with `{}`", failure.replay_hint());
    ExitCode::FAILURE
}

fn trace_report(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cubis-xtask trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = match cubis_trace::Journal::from_json(&src) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cubis-xtask trace-report: {path} is not a journal: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", cubis_xtask::trace_report::render_report(&journal));
    if cubis_xtask::trace_report::check_trajectory(&journal).ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("cubis-xtask trace-report: trajectory checks VIOLATED");
        ExitCode::FAILURE
    }
}

/// `--root <dir>` if given, else the enclosing workspace of the current
/// directory (falling back to this crate's own workspace when invoked
/// via `cargo run` from elsewhere).
fn resolve_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(pos) = args.iter().position(|a| a == "--root") {
        let dir = args
            .get(pos + 1)
            .ok_or_else(|| "--root requires a directory argument".to_string())?;
        return Ok(PathBuf::from(dir));
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    find_workspace_root(&cwd)
        .or_else(|| {
            // When run via `cargo run` from outside the tree, fall back to
            // the workspace this binary was built from.
            option_env!("CARGO_MANIFEST_DIR")
                .and_then(|dir| find_workspace_root(&PathBuf::from(dir)))
        })
        .ok_or_else(|| "no enclosing Cargo workspace found; pass --root".to_string())
}

fn analyze(root: &PathBuf, opts: &AnalyzeOpts) -> ExitCode {
    if opts.fix_baseline {
        return fix_baseline(root);
    }
    match run_analyze_gate(root, opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("cubis-xtask analyze: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run the pass, gate against the committed baseline, emit the
/// requested reports; `Ok(true)` when the gate passes.
fn run_analyze_gate(root: &PathBuf, opts: &AnalyzeOpts) -> Result<bool, String> {
    let analysis = analyze_workspace_full(root).map_err(|e| format!("io error: {e}"))?;
    let mut findings = analysis.findings;
    if opts.changed_only {
        let changed = changed_files(root)?;
        println!(
            "cubis-xtask analyze: --changed restricting to {} touched file(s)",
            changed.len()
        );
        findings.retain(|f| changed.contains(&f.path));
    }
    let baseline = Baseline::load(root)
        .map_err(|e| format!("{}: {e}", baseline::BASELINE_FILE))?
        .unwrap_or_default();
    let outcome = baseline::gate(findings, &baseline);

    for f in &outcome.deny {
        println!("{f} [deny]");
    }
    for f in &outcome.new_warn {
        println!("{f} [warn, not in baseline]");
    }
    if !outcome.baselined.is_empty() {
        println!(
            "cubis-xtask analyze: {} baselined warn finding(s) (see {})",
            outcome.baselined.len(),
            baseline::BASELINE_FILE
        );
    }
    // Stale entries are only meaningful against the full tree: in
    // --changed mode every untouched file's entry would look stale.
    if !opts.changed_only && !outcome.stale.is_empty() {
        println!(
            "cubis-xtask analyze: note: {} stale baseline entr{} (fixed findings); \
             run `analyze --fix-baseline` to prune",
            outcome.stale.len(),
            if outcome.stale.len() == 1 { "y" } else { "ies" }
        );
    }

    write_reports(opts, &outcome, analysis.files_scanned)?;

    if outcome.passes() {
        println!(
            "cubis-xtask analyze: clean ({} file(s) scanned)",
            analysis.files_scanned
        );
        Ok(true)
    } else {
        println!(
            "cubis-xtask analyze: {} deny / {} new warn finding(s); fix, `cubis:allow` \
             with a justification, or (warn only) record with --fix-baseline",
            outcome.deny.len(),
            outcome.new_warn.len()
        );
        Ok(false)
    }
}

fn write_reports(
    opts: &AnalyzeOpts,
    outcome: &GateOutcome,
    files_scanned: usize,
) -> Result<(), String> {
    let emit = |target: &Path, body: String, label: &str| -> Result<(), String> {
        if target == Path::new("-") {
            println!("{body}");
            return Ok(());
        }
        std::fs::write(target, body)
            .map_err(|e| format!("cannot write {label} report {}: {e}", target.display()))?;
        println!("cubis-xtask analyze: wrote {}", target.display());
        Ok(())
    };
    if let Some(path) = &opts.json_out {
        emit(
            path,
            report::json_report(outcome, files_scanned).to_json_string(),
            "JSON",
        )?;
    }
    if let Some(path) = &opts.sarif_out {
        emit(
            path,
            report::sarif_report(outcome).to_json_string(),
            "SARIF",
        )?;
    }
    Ok(())
}

/// Rewrite `analyze-baseline.json` from the current tree's warn
/// findings; refuses while deny findings are present.
fn fix_baseline(root: &PathBuf) -> ExitCode {
    let analysis = match analyze_workspace_full(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cubis-xtask analyze: io error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Baseline::from_findings(&analysis.findings) {
        Ok(b) => {
            let path = root.join(baseline::BASELINE_FILE);
            match std::fs::write(&path, b.to_json()) {
                Ok(()) => {
                    println!(
                        "cubis-xtask analyze: wrote {} ({} entr{})",
                        path.display(),
                        b.entries.len(),
                        if b.entries.len() == 1 { "y" } else { "ies" }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cubis-xtask analyze: cannot write {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        Err(deny) => {
            for f in &deny {
                println!("{f} [deny]");
            }
            eprintln!(
                "cubis-xtask analyze: refusing to baseline {} deny finding(s); fix them or \
                 add justified `cubis:allow` annotations",
                deny.len()
            );
            ExitCode::FAILURE
        }
    }
}

/// Workspace-relative paths touched per git: `git diff --name-only
/// HEAD` plus untracked files.
fn changed_files(root: &PathBuf) -> Result<BTreeSet<PathBuf>, String> {
    let run = |args: &[&str]| -> Result<Vec<PathBuf>, String> {
        let out = Command::new("git")
            .args(args)
            .current_dir(root)
            .output()
            .map_err(|e| format!("--changed requires git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "`git {}` failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        Ok(String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.is_empty())
            .map(PathBuf::from)
            .collect())
    };
    let mut files: BTreeSet<PathBuf> = run(&["diff", "--name-only", "HEAD"])?.into_iter().collect();
    files.extend(run(&["ls-files", "--others", "--exclude-standard"])?);
    Ok(files)
}

/// Wall budget for the ci scale smoke: one `huge-t1000` solve on the
/// breakpoint-grid engine. The committed `BENCH_solve.json` medians
/// sit well under a second; the budget absorbs CI-host noise without
/// letting an accidental O(T²) regression through.
const SCALE_SMOKE_WALL_BUDGET: std::time::Duration = std::time::Duration::from_secs(10);
/// Ceiling on the certified inner gap for the scale smoke solve.
const SCALE_SMOKE_MAX_GAP: f64 = 1e-6;
/// The breakpoint-grid oracles the focused ci fuzz step targets.
const SCALE_ORACLES: [&str; 2] = ["inner-scale-vs-milp", "inner-scale-certificate"];

/// Fuzz only the scale oracles for `iters` seeded cases (the full
/// registry already runs them in the smoke subset; this step buys
/// depth on the new engine without re-paying for every oracle).
fn run_scale_oracle_fuzz(seed: u64, iters: usize) -> Result<usize, String> {
    let targeted: Vec<&cubis_check::Oracle> = cubis_check::oracles::registry()
        .iter()
        .filter(|o| SCALE_ORACLES.contains(&o.name))
        .collect();
    if targeted.len() != SCALE_ORACLES.len() {
        return Err("scale oracles missing from the cubis-check registry".to_string());
    }
    let mut seeds = cubis_check::SplitMix64::new(seed);
    let mut checks = 0usize;
    for _ in 0..iters {
        let inst = cubis_check::CheckInstance::generate(seeds.next_u64());
        for o in &targeted {
            match (o.run)(&inst) {
                Ok(cubis_check::OracleStatus::Checked) => checks += 1,
                Ok(cubis_check::OracleStatus::Skipped) => {}
                Err(detail) => {
                    return Err(format!(
                        "oracle `{}` violated on case seed {}: {detail}",
                        o.name,
                        cubis_check::format_seed(inst.seed)
                    ));
                }
            }
        }
    }
    Ok(checks)
}

/// Fuzz only the reactor parser-equivalence oracle for `iters` seeded
/// cases (the smoke subset runs it too; this buys depth on the split
/// points without re-paying for the solve-heavy oracles).
fn run_parser_oracle_fuzz(seed: u64, iters: usize) -> Result<usize, String> {
    let oracle = cubis_serve::parser_incremental_vs_oneshot_oracle();
    let mut seeds = cubis_check::SplitMix64::new(seed);
    let mut checks = 0usize;
    for _ in 0..iters {
        let inst = cubis_check::CheckInstance::generate(seeds.next_u64());
        match (oracle.run)(&inst) {
            Ok(cubis_check::OracleStatus::Checked) => checks += 1,
            Ok(cubis_check::OracleStatus::Skipped) => {}
            Err(detail) => {
                return Err(format!(
                    "oracle `{}` violated on case seed {}: {detail}",
                    oracle.name,
                    cubis_check::format_seed(inst.seed)
                ));
            }
        }
    }
    Ok(checks)
}

/// Keep-alive reuse floor the reactor smoke demands on its one
/// connection (16 sequential requests leave at least this much reuse
/// visible in `/metrics` even before the final iteration's flush).
const REACTOR_SMOKE_MIN_REUSE: u64 = 10;

/// Boot the reactor serving stack on an ephemeral port and drive one
/// keep-alive connection through a short burst: every request must
/// ride the same TCP connection, and the reuse must be visible in the
/// reactor's own `/metrics` counters.
fn run_reactor_smoke() -> Result<u64, String> {
    let server = cubis_serve::start(cubis_serve::ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .map_err(|e| format!("cannot bind the reactor smoke server: {e}"))?;
    let run = || -> Result<u64, String> {
        let mut conn = cubis_serve::http::ClientConn::connect(
            server.local_addr(),
            std::time::Duration::from_secs(5),
        )
        .map_err(|e| format!("connect: {e}"))?;
        for i in 0..16 {
            let resp = conn
                .request("GET", "/healthz", &[], b"")
                .map_err(|e| format!("healthz #{i}: {e}"))?;
            if resp.status != 200 {
                return Err(format!("healthz #{i} answered {}", resp.status));
            }
        }
        let metrics = conn
            .request("GET", "/metrics", &[], b"")
            .map_err(|e| format!("metrics: {e}"))?;
        if conn.exchanges() != 17 {
            return Err(format!(
                "{} exchanges on one connection (expected 17 — keep-alive broke)",
                conn.exchanges()
            ));
        }
        let text = metrics.body_text();
        let reuse = text
            .lines()
            .find_map(|l| {
                l.strip_prefix("cubis_trace_counter{name=\"reactor.keepalive_reuse\"} ")
                    .and_then(|v| v.trim().parse::<u64>().ok())
            })
            .ok_or("reactor.keepalive_reuse missing from /metrics")?;
        if reuse < REACTOR_SMOKE_MIN_REUSE {
            return Err(format!(
                "reactor.keepalive_reuse {reuse} under the smoke floor {REACTOR_SMOKE_MIN_REUSE}"
            ));
        }
        Ok(reuse)
    };
    let result = run();
    server.shutdown();
    result
}

/// Solve the committed `huge-t1000` bench shape once on its production
/// engine and gate wall time and the certified inner gap.
fn run_scale_smoke() -> Result<(std::time::Duration, f64), String> {
    let shape = cubis_bench::harness::full_shapes()
        .into_iter()
        .find(|s| s.name == "huge-t1000")
        .ok_or_else(|| "shape `huge-t1000` missing from the bench catalog".to_string())?;
    let (game, model) =
        cubis_bench::fixtures::workload(shape.seed, shape.targets, shape.resources, shape.delta);
    let p = cubis_core::RobustProblem::new(&game, &model);
    let policy = match shape.engine {
        "scale" => cubis_core::InnerPolicy::Scale,
        _ => cubis_core::InnerPolicy::Milp,
    };
    let started = std::time::Instant::now();
    let sol = cubis_core::Cubis::new(cubis_core::RoutedInner::new(policy, shape.k))
        .with_epsilon(shape.epsilon)
        .solve(&p)
        .map_err(|e| format!("huge-t1000 solve failed: {e}"))?;
    let wall = started.elapsed();
    if wall > SCALE_SMOKE_WALL_BUDGET {
        return Err(format!(
            "huge-t1000 took {wall:?}, over the {SCALE_SMOKE_WALL_BUDGET:?} budget"
        ));
    }
    if !(sol.inner_gap <= SCALE_SMOKE_MAX_GAP) {
        return Err(format!(
            "huge-t1000 certified inner gap {:e} exceeds the {SCALE_SMOKE_MAX_GAP:e} ceiling",
            sol.inner_gap
        ));
    }
    Ok((wall, sol.inner_gap))
}

fn ci(root: &PathBuf) -> ExitCode {
    println!("[1/13] cargo fmt --check");
    if !run_cargo(root, &["fmt", "--", "--check"], &[]) {
        return ExitCode::FAILURE;
    }
    println!("[2/13] cargo clippy --workspace --all-targets (warnings denied)");
    // float-cmp and unwrap-used stay advisory here: their cubis-analyze
    // cousins (NUM01/NUM02) gate with per-site justifications clippy
    // cannot see.
    if !run_cargo(
        root,
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
            "-A",
            "clippy::float-cmp",
            "-A",
            "clippy::unwrap-used",
        ],
        &[],
    ) {
        return ExitCode::FAILURE;
    }
    println!("[3/13] cubis-xtask analyze (vs committed baseline)");
    // The JSON report lands beside the BENCH_*.json artifacts so CI can
    // upload it.
    let opts = AnalyzeOpts {
        json_out: Some(root.join("analyze-report.json")),
        ..Default::default()
    };
    match run_analyze_gate(root, &opts) {
        Ok(true) => {}
        Ok(false) => return ExitCode::FAILURE,
        Err(e) => {
            eprintln!("ci: analyze failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("[4/13] cubis-check fuzz smoke (registry + serve oracles)");
    let smoke = cubis_check::run_fuzz_with(&cubis_check::FuzzConfig::smoke(), &extra_oracles());
    println!(
        "ci: fuzz smoke ran {} case(s), {} oracle check(s)",
        smoke.cases_run, smoke.oracle_checks
    );
    if let Some(failure) = smoke.failure {
        report_failure(&failure);
        return ExitCode::FAILURE;
    }
    println!("[5/13] scale-oracle fuzz (50 cases over the breakpoint-grid oracles)");
    match run_scale_oracle_fuzz(0x5CA1E, 50) {
        Ok(checks) => println!("ci: scale-oracle fuzz ok ({checks} oracle check(s))"),
        Err(detail) => {
            eprintln!("ci: scale-oracle fuzz failed: {detail}");
            return ExitCode::FAILURE;
        }
    }
    println!("[6/13] parser-oracle fuzz (50 cases, incremental vs one-shot)");
    match run_parser_oracle_fuzz(0x9A25E, 50) {
        Ok(checks) => println!("ci: parser-oracle fuzz ok ({checks} oracle check(s))"),
        Err(detail) => {
            eprintln!("ci: parser-oracle fuzz failed: {detail}");
            return ExitCode::FAILURE;
        }
    }
    println!("[7/13] scale smoke (huge-t1000 certified under budget)");
    match run_scale_smoke() {
        Ok((wall, gap)) => {
            println!("ci: scale smoke ok (huge-t1000 in {wall:?}, certified gap {gap:e})");
        }
        Err(detail) => {
            eprintln!("ci: scale smoke failed: {detail}");
            return ExitCode::FAILURE;
        }
    }
    println!("[8/13] cubis-bench smoke");
    // In-process and validated only — the repo-root BENCH_solve.json is
    // written by an explicit `bench` run, never as a ci side effect.
    match cubis_bench::harness::run(&cubis_bench::harness::smoke_shapes()) {
        Ok(report) => {
            let json = report.to_json_string();
            match cubis_bench::harness::BenchReport::from_json_str(&json) {
                Ok(back) if !back.shapes.is_empty() => {
                    println!("ci: bench smoke ok ({} shape(s))", back.shapes.len());
                }
                Ok(_) => {
                    eprintln!("ci: bench smoke produced an empty report");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("ci: bench smoke output malformed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(e) => {
            eprintln!("ci: bench smoke failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("[9/13] cubis-serve smoke (loadgen + restart survival)");
    // Same discipline as the bench smoke: in-process and validated
    // only — BENCH_serve.json is written by an explicit `loadgen` run.
    // The smoke still runs the full two-phase protocol: prime a
    // scratch data dir, then reboot over it and demand a byte-identical
    // persistent-tier answer.
    {
        let smoke_config = smoke_loadgen_config();
        let data_dir =
            std::env::temp_dir().join(format!("cubis-ci-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let outcome = run_loadgen(&smoke_config, &data_dir).and_then(|(report, reference)| {
            check_restart_survival(&smoke_config, &data_dir, &reference)?;
            Ok(report)
        });
        let _ = std::fs::remove_dir_all(&data_dir);
        match outcome {
            Ok(report) => {
                println!(
                    "ci: serve smoke ok ({} request(s), hit rate {:.2}, p99 {}us, \
                     restart survival byte-identical)",
                    report.requests, report.hit_rate, report.p99_us
                );
            }
            Err(e) => {
                eprintln!("ci: serve smoke failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        // The committed artifact must clear the committed serve pins —
        // the p99/throughput/keep-alive/tier-2 regression gates.
        let gate = cubis_bench::BenchPins::load(&root.join("bench-pins.json"))
            .and_then(|pins| {
                let committed = root.join("BENCH_serve.json");
                let report = std::fs::read_to_string(&committed)
                    .map_err(|e| format!("cannot read {}: {e}", committed.display()))
                    .and_then(|s| cubis_bench::ServeBenchReport::from_json_str(&s))?;
                pins.serve_pin.check(&report)
            });
        match gate {
            Ok(()) => println!("ci: committed BENCH_serve.json clears its pinned gates"),
            Err(e) => {
                eprintln!("ci: committed serve report fails its pins: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("[10/13] reactor smoke (keep-alive burst on one connection)");
    match run_reactor_smoke() {
        Ok(reuse) => println!("ci: reactor smoke ok (keepalive_reuse {reuse} on one connection)"),
        Err(e) => {
            eprintln!("ci: reactor smoke failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("[11/13] cargo test -q");
    if !run_cargo(root, &["test", "-q"], &[]) {
        return ExitCode::FAILURE;
    }
    println!("[12/13] cargo doc --no-deps (warnings denied)");
    if !run_cargo(
        root,
        &["doc", "--no-deps"],
        &[("RUSTDOCFLAGS", "-D warnings")],
    ) {
        return ExitCode::FAILURE;
    }
    println!("[13/13] cargo test --doc");
    if !run_cargo(root, &["test", "--doc", "-q"], &[]) {
        return ExitCode::FAILURE;
    }
    println!("ci: all gates passed");
    ExitCode::SUCCESS
}

fn run_cargo(root: &PathBuf, args: &[&str], envs: &[(&str, &str)]) -> bool {
    match Command::new("cargo")
        .args(args)
        .envs(envs.iter().copied())
        .current_dir(root)
        .status()
    {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("ci: `cargo {}` failed with {status}", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("ci: could not spawn cargo: {e}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_table_matches_command_table() {
        let handlers: Vec<&str> = HANDLERS.iter().map(|(n, _)| *n).collect();
        let specs: Vec<&str> = commands::COMMANDS.iter().map(|c| c.name).collect();
        assert_eq!(
            handlers, specs,
            "dispatch table out of sync with commands::COMMANDS"
        );
    }

    #[test]
    fn scale_oracle_fuzz_targets_exist_and_pass_a_short_run() {
        let checks = run_scale_oracle_fuzz(7, 5).expect("scale oracle fuzz violated");
        assert!(checks > 0, "every case skipped both scale oracles");
    }

    #[test]
    fn parser_oracle_fuzz_passes_a_short_run() {
        let checks = run_parser_oracle_fuzz(7, 5).expect("parser oracle fuzz violated");
        assert_eq!(checks, 5, "the parser oracle never skips");
    }

    #[test]
    fn reactor_smoke_sees_keepalive_reuse() {
        let reuse = run_reactor_smoke().expect("reactor smoke failed");
        assert!(reuse >= REACTOR_SMOKE_MIN_REUSE);
    }

    #[test]
    fn loadgen_smoke_round_trips_the_persistent_tier() {
        let config = smoke_loadgen_config();
        let dir = std::env::temp_dir().join(format!("cubis-xtask-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (report, reference) = run_loadgen(&config, &dir).expect("loadgen smoke");
        assert!(report.keepalive_reused > 0);
        check_restart_survival(&config, &dir, &reference).expect("restart survival");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_smoke_certifies_huge_t1000_under_budget() {
        let (wall, gap) = run_scale_smoke().expect("scale smoke failed");
        assert!(wall <= SCALE_SMOKE_WALL_BUDGET);
        assert!(gap <= SCALE_SMOKE_MAX_GAP);
    }
}
