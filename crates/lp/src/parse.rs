//! Parser for the `LpProblem::dump` text format.
//!
//! `dump` → `parse_dump` round-trips a problem, which makes it possible
//! to capture failing instances from deep inside other solvers (the
//! `CUBIS_LP_DUMP` hook in the simplex writes one on numerical
//! breakdown) and replay them as focused regression tests.

use crate::model::{LpProblem, Relation, Sense, VarId};
use std::collections::HashMap;

/// Errors from [`parse_dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description with the offending line.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dump parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError { message: message.into() }
}

/// Reconstruct an [`LpProblem`] from [`LpProblem::dump`] output.
///
/// Variables keep their dumped names; ids are assigned in order of first
/// appearance in the `Bounds` section (which `dump` writes in variable
/// order, so round-trips preserve indices).
pub fn parse_dump(text: &str) -> Result<LpProblem, ParseError> {
    #[derive(PartialEq)]
    enum Section {
        Head,
        Objective,
        Constraints,
        Bounds,
    }
    let mut sense = None;
    let mut section = Section::Head;
    // (name → (lower, upper)) discovered in the Bounds section, ordered.
    let mut bounds: Vec<(String, f64, f64)> = Vec::new();
    let mut obj_terms: Vec<(String, f64)> = Vec::new();
    let mut raw_rows: Vec<(Vec<(String, f64)>, Relation, f64)> = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "Maximize" => {
                sense = Some(Sense::Maximize);
                section = Section::Objective;
                continue;
            }
            "Minimize" => {
                sense = Some(Sense::Minimize);
                section = Section::Objective;
                continue;
            }
            "Subject To" => {
                section = Section::Constraints;
                continue;
            }
            "Bounds" => {
                section = Section::Bounds;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Head => return Err(err(format!("unexpected line before sense: {line}"))),
            Section::Objective => {
                let body = line.strip_prefix("obj:").unwrap_or(line);
                obj_terms.extend(parse_terms(body)?);
            }
            Section::Constraints => {
                let body = match line.split_once(':') {
                    Some((_label, rest)) => rest.trim(),
                    None => line,
                };
                let (terms_str, rel, rhs_str) = if let Some((l, r)) = body.split_once("<=") {
                    (l, Relation::Le, r)
                } else if let Some((l, r)) = body.split_once(">=") {
                    (l, Relation::Ge, r)
                } else if let Some((l, r)) = body.split_once('=') {
                    (l, Relation::Eq, r)
                } else {
                    return Err(err(format!("constraint without relation: {line}")));
                };
                let rhs: f64 = rhs_str
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad rhs in: {line}")))?;
                raw_rows.push((parse_terms(terms_str)?, rel, rhs));
            }
            Section::Bounds => {
                // `lo <= name <= hi`
                let mut parts = line.split("<=");
                let lo = parts
                    .next()
                    .ok_or_else(|| err(format!("bad bounds line: {line}")))?
                    .trim();
                let name = parts
                    .next()
                    .ok_or_else(|| err(format!("bad bounds line: {line}")))?
                    .trim();
                let hi = parts
                    .next()
                    .ok_or_else(|| err(format!("bad bounds line: {line}")))?
                    .trim();
                let lo: f64 = parse_bound(lo)?;
                let hi: f64 = parse_bound(hi)?;
                bounds.push((name.to_string(), lo, hi));
            }
        }
    }

    let sense = sense.ok_or_else(|| err("missing Maximize/Minimize header"))?;
    let mut p = LpProblem::new(sense);
    let mut ids: HashMap<String, VarId> = HashMap::new();
    let obj: HashMap<&str, f64> =
        obj_terms.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    for (name, lo, hi) in &bounds {
        let coeff = obj.get(name.as_str()).copied().unwrap_or(0.0);
        let id = p.add_var(name.clone(), *lo, *hi, coeff);
        ids.insert(name.clone(), id);
    }
    for (terms, rel, rhs) in raw_rows {
        let mut row = Vec::with_capacity(terms.len());
        for (name, c) in terms {
            let id = *ids
                .get(&name)
                .ok_or_else(|| err(format!("constraint uses unknown variable {name}")))?;
            row.push((id, c));
        }
        p.add_constraint(row, rel, rhs);
    }
    Ok(p)
}

fn parse_bound(s: &str) -> Result<f64, ParseError> {
    match s {
        "inf" | "+inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => s.parse().map_err(|_| err(format!("bad bound: {s}"))),
    }
}

/// Parse `+c·name -c·name …` term lists.
fn parse_terms(s: &str) -> Result<Vec<(String, f64)>, ParseError> {
    let mut out = Vec::new();
    for tok in s.split_whitespace() {
        let (coeff_str, name) = tok
            .split_once('·')
            .ok_or_else(|| err(format!("bad term: {tok}")))?;
        let coeff: f64 = coeff_str
            .parse()
            .map_err(|_| err(format!("bad coefficient: {coeff_str}")))?;
        out.push((name.to_string(), coeff));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, LpOptions, LpStatus};

    #[test]
    fn round_trips_a_problem() {
        let mut p = LpProblem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 1.5);
        let y = p.add_var("y", -2.0, f64::INFINITY, -0.5);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(x, -1.0), (y, 1.0)], Relation::Ge, -1.0);
        p.add_constraint(vec![(x, 1.0)], Relation::Eq, 2.0);
        let q = parse_dump(&p.dump()).expect("parse");
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.num_constraints(), 3);
        let a = solve(&p, &LpOptions::default()).unwrap();
        let b = solve(&q, &LpOptions::default()).unwrap();
        assert_eq!(a.status, LpStatus::Optimal);
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn infinite_bounds_round_trip() {
        let mut p = LpProblem::new(Sense::Minimize);
        p.add_var("f", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let q = parse_dump(&p.dump()).expect("parse");
        let (lo, hi) = q.var_bounds(q.var_id(0));
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, f64::INFINITY);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dump("what is this").is_err());
        assert!(parse_dump("Maximize\n  obj: nonsense").is_err());
    }
}
