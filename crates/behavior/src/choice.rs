//! The point-estimate discrete-choice interface and the stable softmax.

use cubis_game::SecurityGame;

/// A discrete-choice attacker model: target attractiveness
/// `F_i(x_i) > 0`, decreasing in coverage.
///
/// The primitive is the **log** attractiveness so the attack
/// distribution (a softmax) can be computed without overflow; models
/// whose natural form is `exp(·)` (QR, SUQR) return the exponent
/// directly.
pub trait ChoiceModel {
    /// `ln F_i(x_i)` for target `i` of `game` at coverage `x_i`.
    fn log_attractiveness(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64;

    /// `F_i(x_i)`, clamped to stay positive and finite.
    fn attractiveness(&self, game: &SecurityGame, i: usize, x_i: f64) -> f64 {
        crate::clamp_exponent(self.log_attractiveness(game, i, x_i)).exp()
    }
}

/// Attack distribution `q` of equation (4) under a point model, computed
/// with the max-subtraction softmax for numerical stability.
///
/// # Panics
/// Panics if `x.len() != game.num_targets()`.
pub fn attack_distribution<M: ChoiceModel + ?Sized>(
    model: &M,
    game: &SecurityGame,
    x: &[f64],
) -> Vec<f64> {
    let t = game.num_targets();
    assert_eq!(x.len(), t, "attack_distribution: coverage length mismatch");
    let logs: Vec<f64> = (0..t).map(|i| model.log_attractiveness(game, i, x[i])).collect();
    softmax(&logs)
}

/// Stable softmax over raw logits.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax: empty input");
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_game::TargetPayoffs;

    struct UniformModel;
    impl ChoiceModel for UniformModel {
        fn log_attractiveness(&self, _: &SecurityGame, _: usize, _: f64) -> f64 {
            0.0
        }
    }

    fn game(t: usize) -> SecurityGame {
        SecurityGame::new(
            (0..t).map(|_| TargetPayoffs::new(5.0, -5.0, 5.0, -5.0)).collect(),
            1.0,
        )
    }

    #[test]
    fn uniform_model_gives_uniform_attack() {
        let g = game(4);
        let q = attack_distribution(&UniformModel, &g, &[0.25; 4]);
        for qi in &q {
            assert!((qi - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let q = softmax(&[1.0, 2.0, 3.0]);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q[0] < q[1] && q[1] < q[2]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let q = softmax(&[1000.0, 1001.0]);
        assert!(q.iter().all(|v| v.is_finite()));
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q[1] > q[0]);
    }

    #[test]
    fn attractiveness_is_exp_of_log() {
        let g = game(2);
        let m = UniformModel;
        assert!((m.attractiveness(&g, 0, 0.3) - 1.0).abs() < 1e-12);
    }
}
