//! Machine-readable analyze reports: the native JSON format (on the
//! `cubis-trace` codec, like every other artifact in this workspace)
//! and a minimal SARIF 2.1.0 emitter for external tooling (editors, CI
//! annotation bots).
//!
//! The native report is what `cubis-xtask ci` writes next to the
//! `BENCH_*.json` artifacts; it carries the full gate verdict (deny /
//! new-warn / baselined / stale), not just the raw finding list, so a
//! consumer can reproduce the exit code from the artifact alone.

use crate::baseline::GateOutcome;
use crate::rules::RULE_DOCS;
use crate::{Finding, Severity};
use cubis_trace::json::JsonValue;

/// Schema version of the native JSON report.
pub const REPORT_VERSION: u64 = 1;

fn finding_json(f: &Finding) -> JsonValue {
    JsonValue::Obj(vec![
        ("rule".into(), JsonValue::Str(f.rule.to_string())),
        (
            "severity".into(),
            JsonValue::Str(
                match f.severity {
                    Severity::Deny => "deny",
                    Severity::Warn => "warn",
                }
                .to_string(),
            ),
        ),
        ("path".into(), JsonValue::Str(f.path.display().to_string())),
        ("line".into(), JsonValue::Num(f.line as f64)),
        ("scope".into(), JsonValue::Str(f.scope.clone())),
        ("fingerprint".into(), JsonValue::Str(f.fingerprint.clone())),
        ("message".into(), JsonValue::Str(f.message.clone())),
    ])
}

/// Build the native JSON report for one gate run.
pub fn json_report(outcome: &GateOutcome, files_scanned: usize) -> JsonValue {
    let list = |fs: &[Finding]| JsonValue::Arr(fs.iter().map(finding_json).collect());
    JsonValue::Obj(vec![
        ("version".into(), JsonValue::Num(REPORT_VERSION as f64)),
        ("tool".into(), JsonValue::Str("cubis-xtask analyze".into())),
        ("files_scanned".into(), JsonValue::Num(files_scanned as f64)),
        ("passes".into(), JsonValue::Bool(outcome.passes())),
        ("deny".into(), list(&outcome.deny)),
        ("new_warn".into(), list(&outcome.new_warn)),
        ("baselined".into(), list(&outcome.baselined)),
        (
            "stale_baseline".into(),
            JsonValue::Arr(
                outcome
                    .stale
                    .iter()
                    .map(|s| JsonValue::Str(s.clone()))
                    .collect(),
            ),
        ),
    ])
}

/// Build a minimal SARIF 2.1.0 log: one run, one rule table from
/// [`RULE_DOCS`], one result per gating finding (deny + new warn;
/// baselined findings are emitted with level `note` so viewers can
/// still surface them).
pub fn sarif_report(outcome: &GateOutcome) -> JsonValue {
    let rules: Vec<JsonValue> = RULE_DOCS
        .iter()
        .map(|(id, doc)| {
            JsonValue::Obj(vec![
                ("id".into(), JsonValue::Str((*id).to_string())),
                (
                    "shortDescription".into(),
                    JsonValue::Obj(vec![("text".into(), JsonValue::Str((*doc).to_string()))]),
                ),
            ])
        })
        .collect();
    let result = |f: &Finding, level: &str| {
        JsonValue::Obj(vec![
            ("ruleId".into(), JsonValue::Str(f.rule.to_string())),
            ("level".into(), JsonValue::Str(level.to_string())),
            (
                "message".into(),
                JsonValue::Obj(vec![("text".into(), JsonValue::Str(f.message.clone()))]),
            ),
            (
                "partialFingerprints".into(),
                JsonValue::Obj(vec![(
                    "cubisAnalyze/v1".into(),
                    JsonValue::Str(f.fingerprint.clone()),
                )]),
            ),
            (
                "locations".into(),
                JsonValue::Arr(vec![JsonValue::Obj(vec![(
                    "physicalLocation".into(),
                    JsonValue::Obj(vec![
                        (
                            "artifactLocation".into(),
                            JsonValue::Obj(vec![(
                                "uri".into(),
                                JsonValue::Str(f.path.display().to_string()),
                            )]),
                        ),
                        (
                            "region".into(),
                            JsonValue::Obj(vec![(
                                "startLine".into(),
                                JsonValue::Num(f.line.max(1) as f64),
                            )]),
                        ),
                    ]),
                )])]),
            ),
        ])
    };
    let mut results: Vec<JsonValue> = Vec::new();
    for f in &outcome.deny {
        results.push(result(f, "error"));
    }
    for f in &outcome.new_warn {
        results.push(result(f, "warning"));
    }
    for f in &outcome.baselined {
        results.push(result(f, "note"));
    }
    JsonValue::Obj(vec![
        (
            "$schema".into(),
            JsonValue::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .into(),
            ),
        ),
        ("version".into(), JsonValue::Str("2.1.0".into())),
        (
            "runs".into(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                (
                    "tool".into(),
                    JsonValue::Obj(vec![(
                        "driver".into(),
                        JsonValue::Obj(vec![
                            ("name".into(), JsonValue::Str("cubis-xtask analyze".into())),
                            ("rules".into(), JsonValue::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results".into(), JsonValue::Arr(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn outcome() -> GateOutcome {
        let mut f = Finding::new(
            "NUM01",
            Path::new("crates/lp/src/x.rs"),
            7,
            "raw float compare".to_string(),
        );
        f.scope = "fn f".into();
        f.fingerprint = "aaaa".into();
        let mut w = Finding::new(
            "NUM04",
            Path::new("crates/lp/src/x.rs"),
            9,
            "lossy cast".to_string(),
        );
        w.scope = "fn g".into();
        w.fingerprint = "bbbb".into();
        GateOutcome {
            deny: vec![f],
            new_warn: vec![w],
            baselined: vec![],
            stale: vec!["cccc".into()],
        }
    }

    #[test]
    fn json_report_round_trips_and_carries_the_verdict() {
        let rep = json_report(&outcome(), 42);
        let parsed = cubis_trace::json::parse(&rep.to_json_string()).unwrap();
        assert_eq!(
            parsed.get("passes").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert_eq!(
            parsed.get("files_scanned").and_then(JsonValue::as_usize),
            Some(42)
        );
        let deny = parsed.get("deny").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(
            deny[0].get("fingerprint").and_then(JsonValue::as_str),
            Some("aaaa")
        );
        assert_eq!(
            deny[0].get("severity").and_then(JsonValue::as_str),
            Some("deny")
        );
        let stale = parsed
            .get("stale_baseline")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn sarif_is_parseable_and_levels_follow_severity() {
        let rep = sarif_report(&outcome());
        let parsed = cubis_trace::json::parse(&rep.to_json_string()).unwrap();
        assert_eq!(
            parsed.get("version").and_then(JsonValue::as_str),
            Some("2.1.0")
        );
        let runs = parsed.get("runs").and_then(JsonValue::as_arr).unwrap();
        let results = runs[0].get("results").and_then(JsonValue::as_arr).unwrap();
        let levels: Vec<&str> = results
            .iter()
            .map(|r| r.get("level").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(levels, ["error", "warning"]);
        // Every rule in the driver table has an id.
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(rules.len(), RULE_DOCS.len());
    }
}
