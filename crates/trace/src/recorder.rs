//! The [`Recorder`] trait, its no-op default, and the cloneable
//! [`SharedRecorder`] handle the solver crates embed in their options
//! structs.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::event::Event;

/// A sink for solve events.
///
/// Implementations must be cheap to call and thread-safe: the parallel
/// branch-and-bound records from worker threads. The solver crates
/// never call [`Recorder::record`] directly — they go through
/// [`SharedRecorder`], which skips event construction entirely when
/// [`Recorder::enabled`] is false, so a disabled recorder costs one
/// virtual bool check per instrumentation site.
///
/// # Examples
///
/// A custom recorder that just counts events:
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use cubis_trace::{Event, Recorder, SharedRecorder};
///
/// #[derive(Default)]
/// struct CountingRecorder(AtomicU64);
///
/// impl Recorder for CountingRecorder {
///     fn record(&self, _event: Event) {
///         self.0.fetch_add(1, Ordering::SeqCst);
///     }
/// }
///
/// let counting = std::sync::Arc::new(CountingRecorder::default());
/// let rec = SharedRecorder::new(counting.clone());
/// rec.counter("lp.pivots", 3);
/// drop(rec.span("cubis.solve")); // span event emitted on drop
/// assert_eq!(counting.0.load(Ordering::SeqCst), 2);
/// ```
pub trait Recorder: Send + Sync {
    /// Whether this recorder wants events at all. Instrumentation
    /// sites check this before building an [`Event`], so returning
    /// `false` makes recording free apart from the check itself.
    fn enabled(&self) -> bool {
        true
    }

    /// Capture one event.
    fn record(&self, event: Event);
}

/// The default recorder: discards everything and reports
/// [`Recorder::enabled`] as `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// A cloneable handle to a [`Recorder`], suitable as a field of
/// `Debug + Clone` options structs (`CubisOptions`, `LpOptions`,
/// `MilpOptions`, ...).
///
/// The default handle holds no recorder and is therefore disabled;
/// every helper on this type is a no-op until a recorder is attached
/// with [`SharedRecorder::new`].
#[derive(Clone, Default)]
pub struct SharedRecorder(Option<Arc<dyn Recorder>>);

impl fmt::Debug for SharedRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedRecorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl SharedRecorder {
    /// Wrap a recorder for sharing across solver layers.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        SharedRecorder(Some(recorder))
    }

    /// The disabled handle (same as [`Default`]).
    pub fn null() -> Self {
        SharedRecorder(None)
    }

    /// Whether events will actually be captured. Instrumentation sites
    /// that need to gather inputs (timestamps, counts) before building
    /// an event should check this first.
    pub fn enabled(&self) -> bool {
        match &self.0 {
            Some(r) => r.enabled(),
            None => false,
        }
    }

    /// Record `event` if enabled.
    pub fn record(&self, event: Event) {
        if let Some(r) = &self.0 {
            if r.enabled() {
                r.record(event);
            }
        }
    }

    /// Add `delta` to the named monotonic counter. The name is
    /// `&'static str` so a disabled recorder allocates nothing.
    pub fn counter(&self, name: &'static str, delta: u64) {
        if self.enabled() {
            self.record(Event::Counter {
                name: name.to_string(),
                delta,
            });
        }
    }

    /// Start a named timed region. The returned guard emits one
    /// [`Event::Span`] carrying the region's duration when dropped;
    /// when the recorder is disabled the guard is inert (no clock
    /// read, no allocation).
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if self.enabled() {
            SpanGuard {
                active: Some(ActiveSpan {
                    recorder: self.clone(),
                    name,
                    start: Instant::now(),
                }),
            }
        } else {
            SpanGuard { active: None }
        }
    }
}

struct ActiveSpan {
    recorder: SharedRecorder,
    name: &'static str,
    start: Instant,
}

/// RAII guard for a timed region; see [`SharedRecorder::span`].
#[must_use = "a span measures the region until the guard is dropped"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let dur = span.start.elapsed();
            span.recorder.record(Event::Span {
                name: span.name.to_string(),
                dur_ns: dur.as_nanos() as u64,
            });
        }
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.active.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalRecorder;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let rec = SharedRecorder::null();
        assert!(!rec.enabled());
        rec.counter("x", 1);
        rec.record(Event::Counter {
            name: "x".to_string(),
            delta: 1,
        });
        drop(rec.span("region"));
        // Nothing to observe: the point is that none of the above panics
        // or stores anything. Default is the same handle.
        assert!(!SharedRecorder::default().enabled());
    }

    #[test]
    fn span_guard_emits_exactly_one_event() {
        let journal = Arc::new(JournalRecorder::new());
        let rec = SharedRecorder::new(journal.clone());
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let events = journal.snapshot().events;
        assert_eq!(events.len(), 2);
        // Inner guard drops first.
        match (&events[0].event, &events[1].event) {
            (Event::Span { name: a, .. }, Event::Span { name: b, .. }) => {
                assert_eq!(a, "inner");
                assert_eq!(b, "outer");
            }
            other => panic!("expected two spans, got {other:?}"),
        }
    }

    #[test]
    fn disabled_custom_recorder_suppresses_events() {
        struct Gated;
        impl Recorder for Gated {
            fn enabled(&self) -> bool {
                false
            }
            fn record(&self, _event: Event) {
                panic!("record must not be called when disabled");
            }
        }
        let rec = SharedRecorder::new(Arc::new(Gated));
        assert!(!rec.enabled());
        rec.counter("x", 1);
        drop(rec.span("region"));
    }
}
