//! cubis-check: differential-testing and deterministic-fuzz harness.
//!
//! CUBIS's correctness rests on identities that can be checked
//! mechanically: the three inner solvers agree on the separable `G_c`,
//! the simplex agrees with a dense reference solve, full CUBIS lands
//! within Theorem 1's tolerance of a brute-force grid search, and the
//! robust value obeys metamorphic laws (monotone in interval width,
//! invariant under target relabeling). This crate generates seeded
//! random instances ([`instance::CheckInstance`]), runs them through a
//! registry of such oracles ([`oracles::registry`]), shrinks any
//! failure to a minimal reproducing instance ([`shrink`]) and emits a
//! replayable artifact ([`artifact::CaseArtifact`]).
//!
//! Everything is deterministic: the only randomness is a hand-rolled
//! SplitMix64 ([`rng::SplitMix64`]) and no clocks are read, so
//!
//! ```text
//! CUBIS_CHECK_SEED=0x000000000000002a cargo run -p cubis-xtask -- fuzz
//! ```
//!
//! re-executes a failing case bit-for-bit on any machine.
//!
//! # Example
//!
//! ```
//! use cubis_check::{run_fuzz, FuzzConfig};
//!
//! let report = run_fuzz(&FuzzConfig { seed: 42, iters: 3 });
//! assert_eq!(report.cases_run, 3);
//! assert!(report.failure.is_none(), "oracle violation: {:?}", report.failure);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod canon;
pub mod dense;
pub mod instance;
pub mod oracles;
pub mod reference;
pub mod rng;
pub mod shrink;

pub use artifact::CaseArtifact;
pub use canon::{content_hash, fnv1a};
pub use instance::{format_seed, parse_seed, CheckInstance};
pub use oracles::{Oracle, OracleStatus, Violation};
pub use rng::SplitMix64;

/// Environment variable that replays a single failing case by seed.
pub const SEED_ENV: &str = "CUBIS_CHECK_SEED";

/// Configuration of a fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Master seed: per-case seeds are drawn from
    /// `SplitMix64::new(seed)`.
    pub seed: u64,
    /// Number of generated cases.
    pub iters: usize,
}

impl FuzzConfig {
    /// The small fixed-seed subset `cubis-xtask ci` and tier-1 tests
    /// run: master seed 42, 12 cases — a few seconds, deterministic.
    pub fn smoke() -> Self {
        Self { seed: 42, iters: 12 }
    }
}

/// A fuzz failure: the violation plus the shrunk replayable case.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The per-case seed that generated the failing instance.
    pub case_seed: u64,
    /// Name of the violated oracle.
    pub oracle: &'static str,
    /// Violation detail at the original (pre-shrink) instance.
    pub detail: String,
    /// The generated instance as it failed.
    pub original: CheckInstance,
    /// The shrunk minimal instance (still fails the same oracle).
    pub shrunk: CheckInstance,
}

impl CaseFailure {
    /// The replayable JSON artifact for this failure.
    pub fn artifact(&self) -> CaseArtifact {
        CaseArtifact {
            case_seed: self.case_seed,
            oracle: self.oracle.to_string(),
            detail: self.detail.clone(),
            instance: self.shrunk.clone(),
        }
    }

    /// The shell command that replays this case.
    pub fn replay_hint(&self) -> String {
        format!(
            "{SEED_ENV}={} cargo run -p cubis-xtask -- fuzz",
            format_seed(self.case_seed)
        )
    }
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases generated and executed (stops early on the first failure).
    pub cases_run: usize,
    /// Total oracle checks performed (skips not counted).
    pub oracle_checks: usize,
    /// The first failure, if any, already shrunk.
    pub failure: Option<CaseFailure>,
}

/// Run all oracles against the instance generated from `case_seed`;
/// on violation, shrink and package the failure.
pub fn run_case(case_seed: u64) -> Result<usize, CaseFailure> {
    run_case_with(case_seed, &[])
}

/// [`run_case`] over the built-in registry plus `extra` oracles (the
/// extension point downstream crates like `cubis-serve` register
/// through — see [`oracles::run_all_with`]). The shrinker resolves a
/// violated extra oracle by name against the same extended registry.
pub fn run_case_with(case_seed: u64, extra: &[Oracle]) -> Result<usize, CaseFailure> {
    let inst = CheckInstance::generate(case_seed);
    match oracles::run_all_with(&inst, extra) {
        Ok(checked) => Ok(checked),
        Err(v) => {
            let out = shrink::shrink_for_oracle_with(&inst, v.oracle, extra);
            Err(CaseFailure {
                case_seed,
                oracle: v.oracle,
                detail: v.detail,
                original: inst,
                shrunk: out.instance,
            })
        }
    }
}

/// Run a budgeted fuzz session: `cfg.iters` cases with per-case seeds
/// drawn from `SplitMix64::new(cfg.seed)`, stopping at the first
/// violation (which is shrunk before being reported).
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_with(cfg, &[])
}

/// [`run_fuzz`] with `extra` oracles appended to the registry for
/// every case.
pub fn run_fuzz_with(cfg: &FuzzConfig, extra: &[Oracle]) -> FuzzReport {
    let mut seeds = SplitMix64::new(cfg.seed);
    let mut cases_run = 0usize;
    let mut oracle_checks = 0usize;
    for _ in 0..cfg.iters {
        let case_seed = seeds.next_u64();
        cases_run += 1;
        match run_case_with(case_seed, extra) {
            Ok(checked) => oracle_checks += checked,
            Err(failure) => {
                return FuzzReport { cases_run, oracle_checks, failure: Some(failure) }
            }
        }
    }
    FuzzReport { cases_run, oracle_checks, failure: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_subset_is_clean() {
        let report = run_fuzz(&FuzzConfig::smoke());
        assert_eq!(report.cases_run, FuzzConfig::smoke().iters);
        assert!(report.oracle_checks > 0);
        assert!(
            report.failure.is_none(),
            "smoke violation: {:?}",
            report.failure.map(|f| (f.oracle, f.detail))
        );
    }

    #[test]
    fn fuzz_is_deterministic() {
        let a = run_fuzz(&FuzzConfig { seed: 7, iters: 3 });
        let b = run_fuzz(&FuzzConfig { seed: 7, iters: 3 });
        assert_eq!(a.oracle_checks, b.oracle_checks);
        assert_eq!(a.cases_run, b.cases_run);
    }

    #[test]
    fn replay_hint_names_the_env_var() {
        let failure = CaseFailure {
            case_seed: 0x2a,
            oracle: "inner-dp-vs-brute",
            detail: "example".to_string(),
            original: CheckInstance::generate(1),
            shrunk: CheckInstance::generate(1),
        };
        let hint = failure.replay_hint();
        assert!(hint.contains("CUBIS_CHECK_SEED=0x000000000000002a"));
        assert!(hint.contains("fuzz"));
        let art = failure.artifact();
        assert_eq!(art.case_seed, 0x2a);
        assert_eq!(art.oracle, "inner-dp-vs-brute");
    }
}
