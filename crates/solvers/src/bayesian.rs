//! Bayesian baseline: maximize *expected* utility over sampled attacker
//! types (Yang et al., AAMAS'14 flavor).
//!
//! Given types `t = 1..N` with uniform prior, the defender maximizes
//! `(1/N) Σ_t V_t(x)` where `V_t` is the expected utility against type
//! `t`'s quantal response. The objective is smooth but non-convex; we
//! optimize it with the multi-start projected-gradient engine.

use crate::nonconvex::{maximize_over_coverage, NonconvexOptions};
use crate::types::SampledType;
use cubis_game::SecurityGame;

/// Maximize the uniform-prior expected utility over the given types.
///
/// # Panics
/// Panics if `types` is empty.
pub fn solve_bayesian(
    game: &SecurityGame,
    types: &[SampledType],
    opts: &NonconvexOptions,
) -> Vec<f64> {
    assert!(!types.is_empty(), "solve_bayesian: no types");
    let objective = |x: &[f64]| -> f64 {
        types.iter().map(|t| t.defender_utility(game, x)).sum::<f64>() / types.len() as f64
    };
    maximize_over_coverage(game.num_targets(), game.resources(), objective, opts).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::sample_types;
    use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    use cubis_game::GameGenerator;

    #[test]
    fn single_type_bayesian_approximates_point_best_response() {
        let game = GameGenerator::new(70).generate(4, 1.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.0,
            BoundConvention::ExactInterval,
        )
        .scale_width(0.0); // collapse to the midpoint: one deterministic type
        let types = sample_types(&model, 1, 0);
        let opts = NonconvexOptions { starts: 6, ..Default::default() };
        let x_bayes = solve_bayesian(&game, &types, &opts);
        let x_point =
            crate::midpoint::solve_point_qr(&game, &types[0], 100, 1e-4).unwrap();
        let v = |x: &[f64]| types[0].defender_utility(&game, x);
        assert!(
            (v(&x_bayes) - v(&x_point)).abs() < 0.05,
            "bayes {} vs point {}",
            v(&x_bayes),
            v(&x_point)
        );
    }

    #[test]
    fn output_feasible() {
        let game = GameGenerator::new(71).generate(6, 2.0);
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            0.5,
            BoundConvention::ExactInterval,
        );
        let types = sample_types(&model, 8, 5);
        let opts = NonconvexOptions { starts: 4, max_iters: 60, ..Default::default() };
        let x = solve_bayesian(&game, &types, &opts);
        assert!(game.check_coverage(&x, 1e-5).is_ok());
    }
}
