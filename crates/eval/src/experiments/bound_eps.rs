//! **F5 — convergence vs ε (Theorem 1's `O(ε)` term).**
//!
//! Binary-search iterations follow `⌈log₂(range/ε)⌉` exactly, and the
//! final gap `ub − lb` (the ε part of the Theorem-1 certificate) shrinks
//! linearly with ε while the returned utility stabilizes.

use super::Profile;
use crate::fixtures::workload;
use crate::metrics::Series;
use crate::report::Report;
use cubis_core::solver::predicted_steps;
use cubis_core::SolveError;

/// The ε grid.
pub const EPSILONS: [f64; 5] = [1.0, 0.1, 0.01, 1e-3, 1e-4];
/// Workload shape.
pub const T: usize = 6;

/// Run the experiment.
pub fn run(profile: Profile) -> Result<Report, SolveError> {
    let seeds: Vec<u64> = (0..profile.seeds().min(8)).collect();
    let mut r = Report::new(
        "F5 — binary-search behavior vs ε",
        vec![
            "epsilon",
            "steps (measured)",
            "steps (predicted)",
            "gap ub−lb",
            "worst-case drift",
        ],
    );
    r.note(format!(
        "T = {T}, R = 2, δ = 0.5, DP backend at 200 pts, {} seeds. Drift is \
         the mean |worst-case(ε) − worst-case(1e-4)|; it should fall to ~0 \
         as ε shrinks while steps grow logarithmically.",
        seeds.len()
    ));

    // Reference solution per seed at the tightest ε.
    let reference: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let (game, model) = workload(s, T, 2.0, 0.5);
            let p = cubis_core::RobustProblem::new(&game, &model);
            Ok(super::cubis_dp(200, 1e-4).solve(&p)?.worst_case)
        })
        .collect::<Result<_, SolveError>>()?;

    for &eps in &EPSILONS {
        let mut steps = Series::new();
        let mut gaps = Series::new();
        let mut drift = Series::new();
        let mut predicted = 0usize;
        for (si, &seed) in seeds.iter().enumerate() {
            let (game, model) = workload(seed, T, 2.0, 0.5);
            let p = cubis_core::RobustProblem::new(&game, &model);
            let sol = super::cubis_dp(200, eps).solve(&p)?;
            let (lo, hi) = p.utility_range();
            predicted = predicted_steps(hi - lo, eps);
            steps.push(sol.binary_steps as f64);
            gaps.push(sol.ub - sol.lb);
            drift.push((sol.worst_case - reference[si]).abs());
        }
        r.row(vec![
            format!("{eps:.0e}"),
            format!("{:.1}", steps.mean()),
            format!("{predicted}"),
            format!("{:.2e}", gaps.mean()),
            format!("{:.4}", drift.mean()),
        ]);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_tracks_epsilon() {
        let (game, model) = workload(1, 4, 1.0, 0.5);
        let p = cubis_core::RobustProblem::new(&game, &model);
        for eps in [0.5, 0.05, 0.005] {
            let sol = super::super::cubis_dp(100, eps).solve(&p).unwrap();
            assert!(
                sol.ub - sol.lb <= eps + 1e-12,
                "eps {eps}: gap {}",
                sol.ub - sol.lb
            );
        }
    }
}
