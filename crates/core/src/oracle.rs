//! Exact worst-case evaluation of a fixed defender strategy.
//!
//! For fixed `x` write `u_i = Ud_i(x_i)`, `L_i = L_i(x_i)`,
//! `U_i = U_i(x_i)`. The adversarial inner problem of (5),
//!
//! ```text
//! min_{F ∈ [L,U]}  Σ_i F_i·u_i / Σ_i F_i ,
//! ```
//!
//! is a linear-fractional program whose optimum `c*` is the unique root
//! of the strictly decreasing function
//!
//! ```text
//! φ(c) = Σ_i min( L_i·(u_i − c), U_i·(u_i − c) )
//! ```
//!
//! (Dinkelbach's classic argument: at the optimum the adversary puts
//! `F_i = U_i` on targets with `u_i < c*` — inflate where the defender
//! suffers — and `F_i = L_i` where `u_i > c*`.) Bisection on `φ` gives
//! `c*` to machine precision. An independent LP formulation of the inner
//! problem ((6)–(8), in variables `y, z`) is provided for
//! cross-validation.

use crate::problem::RobustProblem;
use crate::transform;
use cubis_behavior::IntervalChoiceModel;
use cubis_lp::{LpOptions, LpProblem, LpStatus, Relation, Sense};

/// Result of the exact worst-case oracle.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// Worst-case expected defender utility `c*`.
    pub utility: f64,
    /// The adversary's attractiveness choice achieving it (one `F_i` per
    /// target; extreme: each is `L_i(x_i)` or `U_i(x_i)`).
    pub adversarial_f: Vec<f64>,
    /// The induced attack distribution `q_i = F_i / Σ F_j`.
    pub attack: Vec<f64>,
}

impl<M: IntervalChoiceModel> RobustProblem<'_, M> {
    /// Exact worst-case defender utility of strategy `x` (the value of
    /// the inner minimization of (5)), by bisection on `φ`.
    ///
    /// # Example
    ///
    /// ```
    /// use cubis_behavior::{BoundConvention, SuqrUncertainty, UncertainSuqr};
    /// use cubis_core::RobustProblem;
    /// use cubis_game::{SecurityGame, TargetPayoffs};
    ///
    /// let game = SecurityGame::new(vec![
    ///     TargetPayoffs::new(4.0, -4.0, 5.0, -5.0),
    ///     TargetPayoffs::new(3.0, -6.0, 6.0, -3.0),
    /// ], 1.0);
    /// let model = UncertainSuqr::from_game(
    ///     &game, SuqrUncertainty::paper_example(), 0.5,
    ///     BoundConvention::ExactInterval,
    /// );
    /// let problem = RobustProblem::new(&game, &model);
    /// let wc = problem.worst_case(&[0.5, 0.5]);
    /// // The adversarial attack distribution is a probability vector…
    /// assert!((wc.attack.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    /// // …and realizes exactly the reported utility.
    /// let direct = game.expected_defender_utility(&[0.5, 0.5], &wc.attack);
    /// assert!((direct - wc.utility).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    /// Panics if `x.len()` mismatches the game.
    pub fn worst_case(&self, x: &[f64]) -> WorstCase {
        let t = self.num_targets();
        assert_eq!(x.len(), t, "worst_case: coverage length mismatch");
        let us: Vec<f64> = (0..t).map(|i| self.ud(i, x[i])).collect();
        // φ(lo) ≥ 0 and φ(hi) ≤ 0 at the per-target utility extremes.
        let mut lo = us.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut hi = us.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi - lo < 1e-15 {
            // All targets give the same utility: the adversary is
            // indifferent; worst case is that common value.
            let f: Vec<f64> = (0..t).map(|i| self.bounds(i, x[i]).1).collect();
            return finish(lo, f);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if transform::g_total(self, x, mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = 0.5 * (lo + hi);
        // Extreme adversary: U where u_i < c, L where u_i > c. On the
        // (measure-zero) boundary pick U — both give the same value.
        let f: Vec<f64> = (0..t)
            .map(|i| {
                let (l, u) = self.bounds(i, x[i]);
                if us[i] > c {
                    l
                } else {
                    u
                }
            })
            .collect();
        finish(c, f)
    }
}

fn finish(utility: f64, f: Vec<f64>) -> WorstCase {
    let z: f64 = f.iter().sum();
    let attack = f.iter().map(|&fi| fi / z).collect();
    WorstCase { utility, adversarial_f: f, attack }
}

/// Independent cross-check: solve the inner minimization as the LP
/// (6)–(8) in `(y, z)`:
///
/// ```text
/// min Σ y_i·u_i   s.t.  Σ y_i = 1,   L_i·z ≤ y_i ≤ U_i·z
/// ```
///
/// Returns the optimal value, or `None` if the LP solver fails
/// (should not happen on valid inputs; used in tests and debugging).
pub fn worst_case_inner_lp<M: IntervalChoiceModel>(
    p: &RobustProblem<'_, M>,
    x: &[f64],
) -> Option<f64> {
    let t = p.num_targets();
    assert_eq!(x.len(), t, "worst_case_inner_lp: coverage length mismatch");
    let mut lp = LpProblem::new(Sense::Minimize);
    let ys: Vec<_> = (0..t)
        .map(|i| lp.add_var(format!("y{i}"), 0.0, 1.0, p.ud(i, x[i])))
        .collect();
    let z = lp.add_var("z", 0.0, f64::INFINITY, 0.0);
    lp.add_constraint(ys.iter().map(|&y| (y, 1.0)).collect(), Relation::Eq, 1.0);
    for i in 0..t {
        let (l, u) = p.bounds(i, x[i]);
        // y_i − L_i·z ≥ 0  and  y_i − U_i·z ≤ 0.
        lp.add_constraint(vec![(ys[i], 1.0), (z, -l)], Relation::Ge, 0.0);
        lp.add_constraint(vec![(ys[i], 1.0), (z, -u)], Relation::Le, 0.0);
    }
    let sol = cubis_lp::solve(&lp, &LpOptions::default()).ok()?;
    (sol.status == LpStatus::Optimal).then_some(sol.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubis_behavior::{
        BoundConvention, FixedChoice, Interval, Suqr, SuqrUncertainty, SuqrWeights, UncertainSuqr,
    };
    use cubis_game::{GameGenerator, SecurityGame, TargetPayoffs};

    fn fixture() -> (SecurityGame, UncertainSuqr) {
        let game = SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
            ],
            1.0,
        );
        let model = UncertainSuqr::new(
            SuqrUncertainty::paper_example(),
            vec![
                (Interval::new(1.0, 5.0), Interval::new(-7.0, -3.0)),
                (Interval::new(5.0, 9.0), Interval::new(-9.0, -5.0)),
            ],
            BoundConvention::CornerComponentwise,
        );
        (game, model)
    }

    #[test]
    fn oracle_value_is_phi_root() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.46, 0.54];
        let wc = p.worst_case(&x);
        let phi = crate::transform::g_total(&p, &x, wc.utility);
        assert!(phi.abs() < 1e-6, "φ(c*) = {phi}");
    }

    #[test]
    fn oracle_matches_direct_expected_utility() {
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.3, 0.7];
        let wc = p.worst_case(&x);
        let direct = game.expected_defender_utility(&x, &wc.attack);
        assert!(
            (direct - wc.utility).abs() < 1e-9,
            "direct {direct} vs oracle {}",
            wc.utility
        );
    }

    #[test]
    fn oracle_no_better_than_any_box_sample() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let (game, model) = fixture();
        let p = RobustProblem::new(&game, &model);
        let x = [0.5, 0.5];
        let wc = p.worst_case(&x);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..300 {
            // Random F inside the box: utility must be ≥ worst case.
            let f: Vec<f64> = (0..2)
                .map(|i| {
                    let (l, u) = p.bounds(i, x[i]);
                    rng.gen_range(l..=u)
                })
                .collect();
            let z: f64 = f.iter().sum();
            let util: f64 =
                (0..2).map(|i| f[i] / z * game.defender_utility(i, x[i])).sum();
            assert!(util >= wc.utility - 1e-9);
        }
    }

    #[test]
    fn oracle_agrees_with_inner_lp_on_random_games() {
        let mut gen = GameGenerator::new(31);
        for trial in 0..25 {
            let t = 2 + trial % 6;
            let game = gen.generate(t, (t as f64 / 3.0).max(1.0));
            let model = UncertainSuqr::from_game(
                &game,
                SuqrUncertainty::paper_example(),
                0.5,
                BoundConvention::ExactInterval,
            );
            let p = RobustProblem::new(&game, &model);
            let x = cubis_game::uniform_coverage(t, game.resources());
            let wc = p.worst_case(&x);
            let lp = worst_case_inner_lp(&p, &x).expect("inner LP");
            assert!(
                (wc.utility - lp).abs() < 1e-5,
                "trial {trial}: oracle {} vs LP {lp}",
                wc.utility
            );
        }
    }

    #[test]
    fn degenerate_interval_reduces_to_point_quantal_response() {
        // With L = U = F the worst case *is* the point model's utility.
        let game = GameGenerator::new(7).generate(5, 2.0);
        let suqr = Suqr::new(SuqrWeights::LITERATURE);
        let model = FixedChoice(suqr);
        let p = RobustProblem::new(&game, &model);
        let x = cubis_game::uniform_coverage(5, 2.0);
        let q = cubis_behavior::attack_distribution(&suqr, &game, &x);
        let point_util = game.expected_defender_utility(&x, &q);
        let wc = p.worst_case(&x);
        assert!((wc.utility - point_util).abs() < 1e-6);
    }

    #[test]
    fn identical_utilities_shortcut() {
        // Every target same payoffs and same coverage ⇒ worst case equals
        // the common utility.
        let game = SecurityGame::new(
            vec![TargetPayoffs::new(4.0, -4.0, 4.0, -4.0); 3],
            1.5,
        );
        let model = UncertainSuqr::from_game(
            &game,
            SuqrUncertainty::paper_example(),
            1.0,
            BoundConvention::ExactInterval,
        );
        let p = RobustProblem::new(&game, &model);
        let x = [0.5, 0.5, 0.5];
        let wc = p.worst_case(&x);
        assert!((wc.utility - game.defender_utility(0, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn wider_intervals_never_help_the_defender() {
        let (game, model) = fixture();
        let p_wide = RobustProblem::new(&game, &model);
        let narrow = model.scale_width(0.3);
        let p_narrow = RobustProblem::new(&game, &narrow);
        let x = [0.4, 0.6];
        assert!(p_wide.worst_case(&x).utility <= p_narrow.worst_case(&x).utility + 1e-9);
    }
}
