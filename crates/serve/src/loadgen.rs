//! A closed-loop, keep-alive load generator for the solve service.
//!
//! `clients` threads each open **one** keep-alive connection and issue
//! `requests_per_client` sequential `POST /v1/solve` requests over it
//! (closed-loop: the next request waits for the previous response, so
//! offered load tracks service capacity instead of overrunning it).
//! Connections are reused across requests — that reuse is the point:
//! it is what exercises the reactor's per-connection state machines at
//! thousands-of-clients scale without a connect/close storm — and are
//! re-opened only after a transport error or a server-initiated close.
//!
//! The instance mix is seeded and deterministic: with probability
//! `duplicate_rate` a request re-sends one of a small pool of pinned
//! instances (these are the cache's bread and butter), otherwise it
//! sends a fresh never-repeated instance. Admission pushback is
//! honored: a `429 Too Many Requests` response's `Retry-After` header
//! drives a jittered, attempt-scaled backoff sleep before the retry,
//! up to `max_retries_429` attempts. Latencies are measured
//! client-side around the full exchange *including* backoff retries,
//! so the reported quantiles are what a caller would actually observe.
//!
//! Cache hits are split by tier (`x-cubis-cache-tier`: the in-memory
//! hot tier vs. the persistent store), which is how the bench harness
//! proves restart-survival: a run against a warm data dir reports
//! tier-2 hits whose bodies are byte-identical to the priming run.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cubis_check::{CheckInstance, SplitMix64};

use crate::codec::SolveRequest;
use crate::http::ClientConn;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Master seed for the instance mix.
    pub seed: u64,
    /// Probability a request re-sends a pinned pool instance.
    pub duplicate_rate: f64,
    /// Pinned-pool size (distinct instances shared by all clients).
    pub pool_size: usize,
    /// Optional per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Per-request I/O timeout.
    pub timeout: Duration,
    /// Retries on 429 before counting the request as rejected.
    pub max_retries_429: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            seed: 42,
            duplicate_rate: 0.5,
            pool_size: 4,
            deadline_ms: None,
            timeout: Duration::from_secs(30),
            max_retries_429: 4,
        }
    }
}

/// What one request observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestOutcome {
    /// 200 from the in-memory hot cache tier.
    HitTier1,
    /// 200 from the persistent cache tier.
    HitTier2,
    Miss,
    Rejected(u16),
    TransportError,
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Requests attempted (retries of one request count once).
    pub requests: usize,
    /// 200s served from the cache (either tier).
    pub cache_hits: usize,
    /// Cache hits served by the in-memory hot tier.
    pub tier1_hits: usize,
    /// Cache hits served by the persistent tier.
    pub tier2_hits: usize,
    /// 200s solved fresh.
    pub cache_misses: usize,
    /// Non-200 responses (429-after-retries/503/504/…), by count.
    pub rejected: usize,
    /// Requests that failed at the transport level.
    pub transport_errors: usize,
    /// 429 responses that were retried after a `Retry-After` backoff.
    pub retries_429: usize,
    /// Requests carried by an already-used keep-alive connection.
    pub keepalive_reused: usize,
    /// TCP connections the clients opened in total.
    pub connections: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies for successful (200) requests.
    pub latencies: Vec<Duration>,
}

impl LoadgenOutcome {
    /// Successful requests (cache hit or fresh solve).
    pub fn successes(&self) -> usize {
        self.cache_hits + self.cache_misses
    }

    /// Cache hit rate over successful requests (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.successes() == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.successes() as f64
    }

    /// Successful requests per second of wall clock.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.successes() as f64 / secs
    }

    /// Exact latency quantile over successful requests (nearest-rank),
    /// or `None` with no successes.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.latencies.len() as f64).ceil().max(1.0) as usize;
        self.latencies.get(rank - 1).copied()
    }
}

/// The pinned duplicate pool for `seed`: the instances repeated
/// requests re-send. Grids are clamped small — the load generator
/// measures the serving layer, not DP scaling.
pub fn duplicate_pool(seed: u64, pool_size: usize) -> Vec<CheckInstance> {
    let mut r = SplitMix64::new(seed ^ 0x5EED_F00D_0000_0001);
    (0..pool_size.max(1))
        .map(|_| clamp_for_serving(CheckInstance::generate(r.next_u64())))
        .collect()
}

fn clamp_for_serving(mut inst: CheckInstance) -> CheckInstance {
    inst.pp = inst.pp.min(4);
    inst
}

/// Per-client tallies carried back to the aggregator.
#[derive(Default)]
struct ClientStats {
    results: Vec<(RequestOutcome, Duration)>,
    retries_429: usize,
    keepalive_reused: usize,
    connections: usize,
}

/// Run the load against a server at `addr`; blocks until every client
/// finishes.
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> LoadgenOutcome {
    let pool = duplicate_pool(cfg.seed, cfg.pool_size);
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients.max(1))
        .map(|client| {
            let pool = pool.clone();
            let cfg = cfg.clone();
            // Small stacks: at thousands of clients the default 8 MiB
            // would reserve gigabytes for threads that mostly block.
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .name(format!("cubis-loadgen-{client}"))
                .spawn(move || client_loop(addr, client as u64, &pool, &cfg))
                // cubis:allow(NUM02): thread-spawn failure is resource
                // exhaustion in a load generator; there is no partial run
                // worth salvaging, so aborting the benchmark is correct
                .expect("spawn loadgen client")
        })
        .collect();
    let mut requests = 0;
    let mut cache_hits = 0;
    let mut tier1_hits = 0;
    let mut tier2_hits = 0;
    let mut cache_misses = 0;
    let mut rejected = 0;
    let mut transport_errors = 0;
    let mut retries_429 = 0;
    let mut keepalive_reused = 0;
    let mut connections = 0;
    let mut latencies = Vec::new();
    for handle in handles {
        // cubis:allow(NUM02): a panicked client thread is a harness bug with no meaningful counts to salvage; surfacing the panic beats reporting a silently short run
        let stats = handle.join().expect("loadgen client panicked");
        retries_429 += stats.retries_429;
        keepalive_reused += stats.keepalive_reused;
        connections += stats.connections;
        for (outcome, latency) in stats.results {
            requests += 1;
            match outcome {
                RequestOutcome::HitTier1 => {
                    cache_hits += 1;
                    tier1_hits += 1;
                    latencies.push(latency);
                }
                RequestOutcome::HitTier2 => {
                    cache_hits += 1;
                    tier2_hits += 1;
                    latencies.push(latency);
                }
                RequestOutcome::Miss => {
                    cache_misses += 1;
                    latencies.push(latency);
                }
                RequestOutcome::Rejected(_) => rejected += 1,
                RequestOutcome::TransportError => transport_errors += 1,
            }
        }
    }
    latencies.sort();
    LoadgenOutcome {
        requests,
        cache_hits,
        tier1_hits,
        tier2_hits,
        cache_misses,
        rejected,
        transport_errors,
        retries_429,
        keepalive_reused,
        connections,
        elapsed: started.elapsed(),
        latencies,
    }
}

/// The jittered backoff before retrying a 429: uniform in
/// `[base/4, base]` (where `base` honors the server's `Retry-After`,
/// in seconds), scaled by the attempt number so repeat offenders back
/// off further.
fn backoff_ms(r: &mut SplitMix64, retry_after_secs: u64, attempt: u32) -> u64 {
    let base_ms = retry_after_secs.max(1).saturating_mul(1000);
    let low = (base_ms / 4).max(1);
    let jittered = low + r.next_u64() % (base_ms - low + 1);
    jittered.saturating_mul(u64::from(attempt.max(1)))
}

fn client_loop(
    addr: SocketAddr,
    client: u64,
    pool: &[CheckInstance],
    cfg: &LoadgenConfig,
) -> ClientStats {
    // Decorrelate the per-client streams while keeping the whole mix a
    // pure function of (seed, client index).
    let mut r = SplitMix64::new(cfg.seed ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut stats = ClientStats {
        results: Vec::with_capacity(cfg.requests_per_client),
        ..ClientStats::default()
    };
    let mut conn: Option<ClientConn> = None;
    for _ in 0..cfg.requests_per_client {
        let instance = if r.chance(cfg.duplicate_rate) {
            pool[r.range_usize(0, pool.len() - 1)].clone()
        } else {
            clamp_for_serving(CheckInstance::generate(r.next_u64()))
        };
        let body = SolveRequest {
            instance,
            deadline_ms: cfg.deadline_ms,
            policy: crate::codec::RequestPolicy::Auto,
        }
        .to_json_string();
        let started = Instant::now();
        let mut attempt = 0u32;
        let outcome = loop {
            let c = match &mut conn {
                Some(c) if c.reusable() => c,
                _ => match ClientConn::connect(addr, cfg.timeout) {
                    Ok(c) => {
                        stats.connections += 1;
                        conn.insert(c)
                    }
                    Err(_) => break RequestOutcome::TransportError,
                },
            };
            let reused = c.exchanges() > 0;
            match c.request("POST", "/v1/solve", &[], body.as_bytes()) {
                Ok(resp) => {
                    if reused {
                        stats.keepalive_reused += 1;
                    }
                    match resp.status {
                        200 => {
                            break if resp.header("x-cubis-cache") == Some("hit") {
                                if resp.header("x-cubis-cache-tier") == Some("persistent") {
                                    RequestOutcome::HitTier2
                                } else {
                                    RequestOutcome::HitTier1
                                }
                            } else {
                                RequestOutcome::Miss
                            };
                        }
                        429 if attempt < cfg.max_retries_429 => {
                            attempt += 1;
                            stats.retries_429 += 1;
                            let retry_after = resp
                                .header("retry-after")
                                .and_then(|v| v.parse::<u64>().ok())
                                .unwrap_or(1);
                            std::thread::sleep(Duration::from_millis(backoff_ms(
                                &mut r,
                                retry_after,
                                attempt,
                            )));
                        }
                        status => break RequestOutcome::Rejected(status),
                    }
                }
                Err(_) => {
                    // The connection died mid-exchange; one fresh
                    // connection gets to retry, then we report.
                    conn = None;
                    if attempt < 1 {
                        attempt += 1;
                    } else {
                        break RequestOutcome::TransportError;
                    }
                }
            }
        };
        stats.results.push((outcome, started.elapsed()));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pool_is_deterministic_and_clamped() {
        let a = duplicate_pool(42, 4);
        let b = duplicate_pool(42, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|i| i.pp <= 4 && i.is_valid()));
        assert_ne!(duplicate_pool(43, 4), a);
    }

    #[test]
    fn outcome_quantiles_and_rates() {
        let outcome = LoadgenOutcome {
            requests: 10,
            cache_hits: 4,
            tier1_hits: 3,
            tier2_hits: 1,
            cache_misses: 4,
            rejected: 1,
            transport_errors: 1,
            retries_429: 2,
            keepalive_reused: 7,
            connections: 3,
            elapsed: Duration::from_secs(2),
            latencies: (1..=8).map(Duration::from_millis).collect(),
        };
        assert_eq!(outcome.successes(), 8);
        assert!((outcome.hit_rate() - 0.5).abs() < 1e-12);
        assert!((outcome.throughput_rps() - 4.0).abs() < 1e-12);
        assert_eq!(outcome.quantile(0.5), Some(Duration::from_millis(4)));
        assert_eq!(outcome.quantile(1.0), Some(Duration::from_millis(8)));
        let empty = LoadgenOutcome {
            requests: 0,
            cache_hits: 0,
            tier1_hits: 0,
            tier2_hits: 0,
            cache_misses: 0,
            rejected: 0,
            transport_errors: 0,
            retries_429: 0,
            keepalive_reused: 0,
            connections: 0,
            elapsed: Duration::from_secs(1),
            latencies: vec![],
        };
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn backoff_honors_retry_after_with_jitter() {
        let mut r = SplitMix64::new(7);
        for attempt in 1..=3u32 {
            for _ in 0..64 {
                let ms = backoff_ms(&mut r, 2, attempt);
                let scale = u64::from(attempt);
                assert!(
                    ms >= 500 * scale && ms <= 2000 * scale,
                    "attempt {attempt}: {ms}ms outside [base/4, base] × attempt"
                );
            }
        }
        // Retry-After of 0 still sleeps a little.
        assert!(backoff_ms(&mut r, 0, 1) >= 250);
    }

    #[test]
    fn end_to_end_against_a_live_server() {
        let handle = crate::server::start(crate::server::ServeConfig {
            workers: 2,
            queue_capacity: 32,
            ..Default::default()
        })
        .expect("bind ephemeral port");
        let outcome = run(
            handle.local_addr(),
            &LoadgenConfig {
                clients: 2,
                requests_per_client: 6,
                duplicate_rate: 0.6,
                pool_size: 2,
                ..Default::default()
            },
        );
        assert_eq!(outcome.requests, 12);
        assert_eq!(outcome.transport_errors, 0, "transport errors: {outcome:?}");
        assert!(outcome.successes() > 0);
        assert!(outcome.cache_hits > 0, "duplicate mix must produce hits: {outcome:?}");
        assert_eq!(
            outcome.cache_hits,
            outcome.tier1_hits + outcome.tier2_hits,
            "every hit carries a tier: {outcome:?}"
        );
        assert!(
            outcome.keepalive_reused >= 10,
            "2 clients × 6 requests over keep-alive must reuse: {outcome:?}"
        );
        assert_eq!(outcome.connections, 2, "one connection per client: {outcome:?}");
        assert!(outcome.quantile(0.99).is_some());
        handle.shutdown();
    }
}
