//! Readiness polling: epoll on Linux, `poll(2)` as the level-triggered
//! fallback.
//!
//! Both backends expose the same level-triggered contract: `wait`
//! reports an fd as long as the condition holds, so the loop never
//! needs to drain a socket to exhaustion in one pass — unhandled
//! readiness simply shows up again. The epoll backend is O(ready) per
//! wait; the poll backend rebuilds its `pollfd` array each call and is
//! O(registered), which is fine at the connection counts where the
//! fallback matters.
//!
//! The backend is chosen at construction: epoll where available,
//! `poll` otherwise or when `CUBIS_REACTOR_BACKEND=poll` forces the
//! fallback (how the test suite covers both paths on one machine).

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would make progress.
    pub readable: bool,
    /// Report when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// A read would make progress (or the peer closed).
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// Error/hang-up condition; the connection should be torn down
    /// after a final read attempt observes it.
    pub error: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: std::os::fd::OwnedFd,
        buf: Vec<sys::EpollEvent>,
        registered: usize,
    },
    Poll {
        /// `(fd, token, interest)` registrations, rebuilt into a
        /// `pollfd` array on each wait.
        slots: Vec<(RawFd, u64, Interest)>,
    },
}

/// The readiness queue behind the event loop.
pub struct Poller {
    backend: Backend,
}

fn timeout_to_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs deadline never becomes a busy-spin at 0.
        Some(t) => {
            let mut ms = t.as_millis();
            if t.as_nanos() > ms * 1_000_000 {
                ms += 1;
            }
            ms.min(i32::MAX as u128) as i32
        }
    }
}

impl Poller {
    /// Create a poller on the preferred backend for this platform,
    /// honoring the `CUBIS_REACTOR_BACKEND=poll` override.
    pub fn new() -> io::Result<Self> {
        let force_poll =
            std::env::var("CUBIS_REACTOR_BACKEND").map(|v| v == "poll").unwrap_or(false);
        Self::with_fallback(force_poll)
    }

    /// Create a poller, forcing the `poll(2)` fallback when asked.
    pub fn with_fallback(force_poll: bool) -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                return Ok(Self {
                    backend: Backend::Epoll {
                        epfd: sys::epoll_create()?,
                        buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
                        registered: 0,
                    },
                });
            }
        }
        let _ = force_poll;
        Ok(Self { backend: Backend::Poll { slots: Vec::new() } })
    }

    /// The backend actually in use (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// Registrations currently held.
    pub fn registered(&self) -> usize {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { registered, .. } => *registered,
            Backend::Poll { slots } => slots.len(),
        }
    }

    /// Register `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, registered, .. } => {
                use std::os::fd::AsRawFd;
                sys::epoll_add(epfd.as_raw_fd(), fd, epoll_mask(interest), token)?;
                *registered += 1;
                Ok(())
            }
            Backend::Poll { slots } => {
                if slots.iter().any(|&(f, _, _)| f == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                slots.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest set of a registered `fd`.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                use std::os::fd::AsRawFd;
                sys::epoll_modify(epfd.as_raw_fd(), fd, epoll_mask(interest), token)
            }
            Backend::Poll { slots } => {
                match slots.iter_mut().find(|(f, _, _)| *f == fd) {
                    Some(slot) => {
                        slot.1 = token;
                        slot.2 = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Remove `fd` from the poller. Must happen before the fd closes.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, registered, .. } => {
                use std::os::fd::AsRawFd;
                sys::epoll_delete(epfd.as_raw_fd(), fd)?;
                *registered = registered.saturating_sub(1);
                Ok(())
            }
            Backend::Poll { slots } => {
                let before = slots.len();
                slots.retain(|&(f, _, _)| f != fd);
                if slots.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }
        }
    }

    /// Block until readiness or `timeout`, appending reports to
    /// `events` (cleared first). `EINTR` reads as an empty wait.
    pub fn wait(
        &mut self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        events.clear();
        let timeout_ms = timeout_to_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf, registered } => {
                use std::os::fd::AsRawFd;
                // Grow the report buffer with the registration count so
                // one wait can surface every ready fd.
                if buf.len() < (*registered).max(16) {
                    buf.resize((*registered).next_power_of_two(), sys::EpollEvent {
                        events: 0,
                        data: 0,
                    });
                }
                let n = match sys::epoll_wait_events(epfd.as_raw_fd(), buf, timeout_ms) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                for ev in &buf[..n] {
                    // Copy out of the (packed) ABI struct before use.
                    let bits = { ev.events };
                    events.push(PollEvent {
                        token: { ev.data },
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { slots } => {
                let mut fds: Vec<sys::PollFd> = slots
                    .iter()
                    .map(|&(fd, _, interest)| sys::PollFd {
                        fd,
                        events: (if interest.readable { sys::POLLIN } else { 0 })
                            | (if interest.writable { sys::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                let n = match sys::poll_fds(&mut fds, timeout_ms) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                if n > 0 {
                    for (pfd, &(_, token, _)) in fds.iter().zip(slots.iter()) {
                        if pfd.revents == 0 {
                            continue;
                        }
                        events.push(PollEvent {
                            token,
                            readable: pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                            writable: pfd.revents & sys::POLLOUT != 0,
                            error: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    (if interest.readable { sys::EPOLLIN | sys::EPOLLRDHUP } else { 0 })
        | (if interest.writable { sys::EPOLLOUT } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        let mut list = vec![Poller::with_fallback(true).expect("poll backend")];
        if cfg!(target_os = "linux") {
            list.push(Poller::with_fallback(false).expect("epoll backend"));
        }
        list
    }

    #[test]
    fn both_backends_report_level_triggered_readability() {
        for mut poller in backends() {
            let (r, w) = crate::sys::wake_pipe().expect("pipe");
            poller.register(r.as_raw_fd(), 42, Interest::READ).expect("register");
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::ZERO)).expect("wait");
            assert!(events.is_empty(), "{}: nothing readable yet", poller.backend_name());
            crate::sys::write_fd(w.as_raw_fd(), b"!").expect("write");
            poller.wait(&mut events, Some(Duration::from_secs(1))).expect("wait");
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);
            // Level-triggered: unread data reports again.
            poller.wait(&mut events, Some(Duration::from_secs(1))).expect("wait");
            assert_eq!(events.len(), 1, "{}: level-triggered re-report", poller.backend_name());
            poller.deregister(r.as_raw_fd()).expect("deregister");
            poller.wait(&mut events, Some(Duration::ZERO)).expect("wait");
            assert!(events.is_empty(), "{}: deregistered fd is silent", poller.backend_name());
        }
    }

    #[test]
    fn modify_switches_interest() {
        for mut poller in backends() {
            let (r, w) = crate::sys::wake_pipe().expect("pipe");
            crate::sys::write_fd(w.as_raw_fd(), b"!").expect("write");
            poller.register(r.as_raw_fd(), 1, Interest::READ).expect("register");
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::ZERO)).expect("wait");
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            // Drop read interest: the same readable pipe goes silent.
            poller
                .modify(r.as_raw_fd(), 1, Interest { readable: false, writable: false })
                .expect("modify");
            poller.wait(&mut events, Some(Duration::ZERO)).expect("wait");
            assert!(
                events.iter().all(|e| !e.readable),
                "{}: read interest removed",
                poller.backend_name()
            );
            poller.deregister(r.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        for mut poller in backends() {
            let (r, _w) = crate::sys::wake_pipe().expect("pipe");
            poller.register(r.as_raw_fd(), 9, Interest::READ).expect("register");
            let started = std::time::Instant::now();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(30))).expect("wait");
            assert!(events.is_empty());
            assert!(
                started.elapsed() >= Duration::from_millis(25),
                "{}: timeout honored",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn backend_names_and_counts() {
        for poller in backends() {
            assert!(["epoll", "poll"].contains(&poller.backend_name()));
            assert_eq!(poller.registered(), 0);
        }
    }
}
