//! Property-based tests for branch-and-bound: random knapsacks vs a DP
//! oracle, bound validity, and warm-start/target invariants.

use cubis_lp::{LpProblem, Relation, Sense, VarId};
use cubis_milp::{solve_milp, MilpOptions, MilpProblem, MilpStatus};
use proptest::prelude::*;

fn knapsack(values: &[u16], weights: &[u16], cap: u32) -> MilpProblem {
    let mut lp = LpProblem::new(Sense::Maximize);
    let vars: Vec<VarId> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| lp.add_var(format!("x{i}"), 0.0, 1.0, v as f64))
        .collect();
    lp.add_constraint(
        vars.iter().zip(weights).map(|(&v, &w)| (v, w as f64)).collect(),
        Relation::Le,
        cap as f64,
    );
    MilpProblem { lp, integers: vars }
}

/// Exact 0/1-knapsack DP over integer weights.
fn dp_knapsack(values: &[u16], weights: &[u16], cap: u32) -> u32 {
    let cap = cap as usize;
    let mut best = vec![0u32; cap + 1];
    for (&v, &w) in values.iter().zip(weights) {
        let w = w as usize;
        for b in (w..=cap).rev() {
            best[b] = best[b].max(best[b - w] + v as u32);
        }
    }
    best[cap]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// B&B equals the DP oracle on integer knapsacks.
    #[test]
    fn bb_matches_dp_knapsack(
        items in proptest::collection::vec((1u16..40, 1u16..20), 2..12),
        cap in 5u32..60,
    ) {
        let values: Vec<u16> = items.iter().map(|&(v, _)| v).collect();
        let weights: Vec<u16> = items.iter().map(|&(_, w)| w).collect();
        let prob = knapsack(&values, &weights, cap);
        let sol = solve_milp(&prob, &MilpOptions::default()).expect("solve");
        prop_assert_eq!(sol.status, MilpStatus::Optimal);
        let oracle = dp_knapsack(&values, &weights, cap) as f64;
        prop_assert!((sol.objective - oracle).abs() < 1e-6,
            "bb {} vs dp {oracle}", sol.objective);
        // Reported bound must dominate the optimum.
        prop_assert!(sol.bound >= sol.objective - 1e-6);
        // Incumbent must be feasible and integral.
        prop_assert!(prob.max_violation(&sol.x) < 1e-6);
    }

    /// A feasible warm start never degrades the answer, and the target
    /// option terminates with a valid certificate.
    #[test]
    fn warm_start_and_target_are_sound(
        items in proptest::collection::vec((1u16..30, 1u16..15), 3..9),
        cap in 5u32..40,
        threshold_num in 0u32..100,
    ) {
        let values: Vec<u16> = items.iter().map(|&(v, _)| v).collect();
        let weights: Vec<u16> = items.iter().map(|&(_, w)| w).collect();
        let prob = knapsack(&values, &weights, cap);
        let base = solve_milp(&prob, &MilpOptions::default()).expect("solve");
        let oracle = base.objective;

        // Warm start with the empty knapsack (always feasible).
        let w_opts = MilpOptions {
            warm_start: Some(vec![0.0; values.len()]),
            ..Default::default()
        };
        let warm = solve_milp(&prob, &w_opts).expect("solve");
        prop_assert!((warm.objective - oracle).abs() < 1e-6);

        // Target: pick a threshold possibly above or below the optimum.
        let target = oracle * (threshold_num as f64 / 50.0); // 0..2x optimum
        let t_opts = MilpOptions { target: Some(target), ..Default::default() };
        let t_sol = solve_milp(&prob, &t_opts).expect("solve");
        match t_sol.status {
            MilpStatus::Optimal => {
                if target <= oracle + 1e-9 {
                    // Achievable target: incumbent must certify it, or the
                    // search simply finished (tiny instances).
                    if !t_sol.objective.is_nan() {
                        prop_assert!(
                            t_sol.objective >= target.min(oracle) - 1e-6
                                || t_sol.bound <= target + 1e-6
                        );
                    }
                } else {
                    // Unachievable target: the bound must prove it.
                    prop_assert!(t_sol.bound <= target + 1e-6
                        || (t_sol.objective - oracle).abs() < 1e-6,
                        "bound {} target {target} oracle {oracle}", t_sol.bound);
                }
            }
            MilpStatus::TargetUnreachable => {
                // Only valid when the target really is above the optimum.
                prop_assert!(t_sol.bound <= target + 1e-6,
                    "unreachable claimed with bound {} vs target {target}", t_sol.bound);
                prop_assert!(target > oracle - 1e-6,
                    "target {target} ≤ optimum {oracle} declared unreachable");
            }
            MilpStatus::Infeasible => {
                // Knapsack with empty set feasible: cannot be infeasible.
                prop_assert!(false, "knapsack reported infeasible");
            }
            other => prop_assert!(false, "unexpected status {other:?}"),
        }
    }

    /// Parallel solve agrees with sequential on small instances.
    #[test]
    fn parallel_matches_sequential_prop(
        items in proptest::collection::vec((1u16..25, 1u16..12), 2..8),
        cap in 4u32..30,
    ) {
        let values: Vec<u16> = items.iter().map(|&(v, _)| v).collect();
        let weights: Vec<u16> = items.iter().map(|&(_, w)| w).collect();
        let prob = knapsack(&values, &weights, cap);
        let seq = solve_milp(&prob, &MilpOptions::default()).expect("solve");
        let p_opts = MilpOptions { threads: 3, ..Default::default() };
        let par = solve_milp(&prob, &p_opts).expect("solve");
        prop_assert!((seq.objective - par.objective).abs() < 1e-6);
    }
}
