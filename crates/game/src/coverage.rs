//! Coverage-vector (mixed-strategy) operations on the capped simplex
//! `X = {x : 0 ≤ x_i ≤ 1, Σ x_i = R}`.

/// Why a coverage vector is infeasible.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverageError {
    /// Wrong number of entries.
    Length {
        /// Entries supplied.
        got: usize,
        /// Entries expected (`T`).
        expected: usize,
    },
    /// An entry escapes `[0, 1]` by more than the tolerance.
    OutOfRange {
        /// Offending index.
        index: usize,
        /// Offending value.
        value: f64,
    },
    /// The total coverage differs from `R` by more than the tolerance.
    BudgetMismatch {
        /// Observed Σ x_i.
        total: f64,
        /// Expected `R`.
        resources: f64,
    },
}

impl std::fmt::Display for CoverageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverageError::Length { got, expected } => {
                write!(f, "coverage has {got} entries, expected {expected}")
            }
            CoverageError::OutOfRange { index, value } => {
                write!(f, "coverage[{index}] = {value} outside [0,1]")
            }
            CoverageError::BudgetMismatch { total, resources } => {
                write!(f, "total coverage {total} != resources {resources}")
            }
        }
    }
}

impl std::error::Error for CoverageError {}

/// Validate a coverage vector against `X`.
pub fn check(x: &[f64], t: usize, resources: f64, tol: f64) -> Result<(), CoverageError> {
    if x.len() != t {
        return Err(CoverageError::Length { got: x.len(), expected: t });
    }
    for (i, &xi) in x.iter().enumerate() {
        if !(-tol..=1.0 + tol).contains(&xi) || xi.is_nan() {
            return Err(CoverageError::OutOfRange { index: i, value: xi });
        }
    }
    let total: f64 = x.iter().sum();
    if (total - resources).abs() > tol.max(1e-12) * (t as f64) {
        return Err(CoverageError::BudgetMismatch { total, resources });
    }
    Ok(())
}

/// The uniform strategy `x_i = R/T` (always feasible since `R ≤ T`).
pub fn uniform_coverage(t: usize, resources: f64) -> Vec<f64> {
    assert!(t > 0, "uniform_coverage: no targets");
    vec![resources / t as f64; t]
}

/// Clamp every entry into `[0, 1]`.
pub fn clamp01(x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = xi.clamp(0.0, 1.0);
    }
}

/// Euclidean projection of `y` onto the capped simplex
/// `{0 ≤ x ≤ 1, Σ x = R}`.
///
/// The projection is `x_i(τ) = clamp(y_i − τ, 0, 1)` for the unique `τ`
/// making the budget hold; `Σ x(τ)` is continuous and non-increasing in
/// `τ`, so `τ` is found by bisection to machine precision.
///
/// # Panics
/// Panics if `y` is empty or `resources ∉ (0, len]`.
pub fn project_capped_simplex(y: &[f64], resources: f64) -> Vec<f64> {
    let n = y.len();
    assert!(n > 0, "project_capped_simplex: empty input");
    assert!(
        resources > 0.0 && resources <= n as f64,
        "project_capped_simplex: resources {resources} outside (0, {n}]"
    );
    let sum_at = |tau: f64| -> f64 { y.iter().map(|&yi| (yi - tau).clamp(0.0, 1.0)).sum() };
    // Bracket τ: at τ = max(y) − 0 every term is ≤ 0 ⇒ sum 0 ≤ R;
    // at τ = min(y) − 1 every term is 1 ⇒ sum = n ≥ R.
    let mut lo = y.iter().cloned().fold(f64::INFINITY, f64::min) - 1.0;
    let mut hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    debug_assert!(sum_at(lo) >= resources - 1e-12);
    debug_assert!(sum_at(hi) <= resources + 1e-12);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if sum_at(mid) >= resources {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let tau = 0.5 * (lo + hi);
    let mut x: Vec<f64> = y.iter().map(|&yi| (yi - tau).clamp(0.0, 1.0)).collect();
    // Polish the budget exactly by spreading the residual over the
    // strictly interior coordinates (projection leaves them equal-shifted).
    let total: f64 = x.iter().sum();
    let interior: Vec<usize> = (0..n).filter(|&i| x[i] > 1e-9 && x[i] < 1.0 - 1e-9).collect();
    if !interior.is_empty() {
        let adj = (resources - total) / interior.len() as f64;
        for i in interior {
            x[i] = (x[i] + adj).clamp(0.0, 1.0);
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_feasible() {
        let x = uniform_coverage(5, 2.0);
        assert!(check(&x, 5, 2.0, 1e-9).is_ok());
        assert_eq!(x[0], 0.4);
    }

    #[test]
    fn check_catches_each_violation() {
        assert!(matches!(check(&[0.5], 2, 1.0, 1e-9), Err(CoverageError::Length { .. })));
        assert!(matches!(
            check(&[1.5, -0.5], 2, 1.0, 1e-9),
            Err(CoverageError::OutOfRange { .. })
        ));
        assert!(matches!(
            check(&[0.2, 0.2], 2, 1.0, 1e-9),
            Err(CoverageError::BudgetMismatch { .. })
        ));
        assert!(check(&[0.25, 0.75], 2, 1.0, 1e-9).is_ok());
    }

    #[test]
    fn projection_returns_feasible_point() {
        let y = vec![0.9, 0.8, -0.3, 2.0];
        let x = project_capped_simplex(&y, 2.0);
        assert!(check(&x, 4, 2.0, 1e-7).is_ok(), "{x:?}");
    }

    #[test]
    fn projection_of_feasible_point_is_identity() {
        let y = vec![0.3, 0.7, 0.5, 0.5];
        let x = project_capped_simplex(&y, 2.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-7, "{x:?}");
        }
    }

    #[test]
    fn projection_is_distance_minimizing_vs_grid() {
        // 2-target game: the feasible set is the segment
        // {(t, 1−t) : t ∈ [0,1]}; grid-search the true nearest point.
        let y = [1.4, 0.2];
        let x = project_capped_simplex(&y, 1.0);
        let mut best = f64::INFINITY;
        let mut best_t = 0.0;
        for k in 0..=10_000 {
            let t = k as f64 / 10_000.0;
            let d = (y[0] - t).powi(2) + (y[1] - (1.0 - t)).powi(2);
            if d < best {
                best = d;
                best_t = t;
            }
        }
        let d_proj = (y[0] - x[0]).powi(2) + (y[1] - x[1]).powi(2);
        assert!(d_proj <= best + 1e-6, "proj {x:?} vs grid t={best_t}");
    }

    #[test]
    fn projection_saturates_caps() {
        // Budget nearly T forces every coordinate toward 1.
        let y = vec![0.0, 0.0, 0.0];
        let x = project_capped_simplex(&y, 3.0);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "resources")]
    fn projection_rejects_bad_budget() {
        project_capped_simplex(&[0.5, 0.5], 3.0);
    }
}
