//! Runs the full experiment suite in DESIGN.md §4 order, printing the
//! markdown blocks EXPERIMENTS.md records and writing the same tables
//! to `results.json`. Set CUBIS_FULL=1 for paper-scale sweeps; set
//! CUBIS_TRACE=1 (or a path) to also capture a solve journal for the
//! traced experiments (default `results.trace.json`, written alongside
//! `results.json`; render with `cubis-xtask trace-report`).

use cubis_eval::experiments::{self, Profile};
use cubis_eval::report::{write_json, Report};
use cubis_eval::trace::{self, TraceSink};

fn main() {
    let p = Profile::from_env();
    eprintln!("profile: {p:?} (set CUBIS_FULL=1 for full sweeps)\n");
    let sink = TraceSink::from_env("results.trace.json");
    let recorder = trace::recorder_or_null(sink.as_ref());
    let reports: Vec<Report> = vec![
        experiments::table1::run_traced(&recorder),
        experiments::quality_delta::run(p),
        experiments::quality_targets::run(p),
        experiments::runtime_targets::run(p),
        experiments::bound_k::run(p),
        experiments::bound_eps::run(p),
        experiments::runtime_k::run(p),
        experiments::ablate_backend::run(p),
        experiments::ablate_convention::run(p),
        experiments::learning_loop::run(p),
        experiments::parallel_scaling::run(p),
    ]
    .into_iter()
    .collect::<Result<_, _>>()
    .expect("experiment failed");
    for r in &reports {
        r.print();
    }
    match write_json(&reports, "results.json") {
        Ok(()) => eprintln!("wrote results.json"),
        Err(e) => eprintln!("could not write results.json: {e}"),
    }
    trace::finish(sink.as_ref());
}
