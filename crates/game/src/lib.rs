//! Stackelberg security game (SSG) substrate.
//!
//! Implements the game model from Section II of the paper: a defender
//! with `R` resources covers `T` targets with a mixed strategy
//! `x ∈ X = {0 ≤ x_i ≤ 1, Σ x_i = R}`; expected utilities follow
//! equations (1)–(2):
//!
//! ```text
//! Ud_i(x_i) = x_i·Rd_i + (1 − x_i)·Pd_i
//! Ua_i(x_i) = x_i·Pa_i + (1 − x_i)·Ra_i
//! ```
//!
//! The crate also provides coverage-simplex operations (feasibility,
//! projection — needed by the projected-gradient baseline) and seeded
//! random game generators matching the payoff distributions used in the
//! security-games literature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod generator;
pub mod payoff;
pub mod schedule;

pub use coverage::{clamp01, project_capped_simplex, uniform_coverage, CoverageError};
pub use generator::{GameGenerator, PayoffRanges};
pub use payoff::TargetPayoffs;
pub use schedule::{empirical_coverage, sample_patrol, Patrol};

use serde::{Deserialize, Serialize};

/// A Stackelberg security game instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityGame {
    targets: Vec<TargetPayoffs>,
    resources: f64,
}

impl SecurityGame {
    /// Build a game.
    ///
    /// # Panics
    /// Panics if `targets` is empty, `resources` is not in
    /// `(0, targets.len()]`, or any payoff tuple is invalid
    /// (see [`TargetPayoffs::validate`]).
    pub fn new(targets: Vec<TargetPayoffs>, resources: f64) -> Self {
        assert!(!targets.is_empty(), "SecurityGame: no targets");
        assert!(
            resources > 0.0 && resources <= targets.len() as f64,
            "SecurityGame: resources {resources} outside (0, {}]",
            targets.len()
        );
        for (i, t) in targets.iter().enumerate() {
            // cubis:allow(NUM02): constructor precondition — the panic is
            // part of the documented `# Panics` contract above.
            t.validate().unwrap_or_else(|e| panic!("target {i}: {e}"));
        }
        Self { targets, resources }
    }

    /// Number of targets `T`.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Defender resources `R`.
    pub fn resources(&self) -> f64 {
        self.resources
    }

    /// Payoffs of target `i`.
    pub fn target(&self, i: usize) -> &TargetPayoffs {
        &self.targets[i]
    }

    /// All targets in order.
    pub fn targets(&self) -> &[TargetPayoffs] {
        &self.targets
    }

    /// Defender expected utility at target `i` under coverage `x_i`
    /// (equation 1).
    pub fn defender_utility(&self, i: usize, x_i: f64) -> f64 {
        self.targets[i].defender_utility(x_i)
    }

    /// Attacker expected utility at target `i` under coverage `x_i`
    /// (equation 2).
    pub fn attacker_utility(&self, i: usize, x_i: f64) -> f64 {
        self.targets[i].attacker_utility(x_i)
    }

    /// Defender utilities at every target for a full coverage vector.
    ///
    /// # Panics
    /// Panics if `x.len() != self.num_targets()`.
    pub fn defender_utilities(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.targets.len(), "coverage length mismatch");
        self.targets.iter().zip(x).map(|(t, &xi)| t.defender_utility(xi)).collect()
    }

    /// Expected defender utility against a given attack distribution `q`
    /// (the objective of problem (5) for a fixed adversary response).
    ///
    /// # Panics
    /// Panics if lengths mismatch.
    pub fn expected_defender_utility(&self, x: &[f64], q: &[f64]) -> f64 {
        assert_eq!(x.len(), self.targets.len());
        assert_eq!(q.len(), self.targets.len());
        self.targets
            .iter()
            .zip(x)
            .zip(q)
            .map(|((t, &xi), &qi)| qi * t.defender_utility(xi))
            .sum()
    }

    /// Check coverage feasibility for `X = {0 ≤ x ≤ 1, Σ x = R}` within
    /// tolerance `tol`; returns the specific violation.
    pub fn check_coverage(&self, x: &[f64], tol: f64) -> Result<(), CoverageError> {
        coverage::check(x, self.targets.len(), self.resources, tol)
    }

    /// Smallest possible defender utility over all targets and coverages
    /// (`min_i Pd_i`) — the binary-search lower edge used by CUBIS.
    pub fn min_defender_utility(&self) -> f64 {
        self.targets.iter().map(|t| t.def_penalty).fold(f64::INFINITY, f64::min)
    }

    /// Largest possible defender utility (`max_i Rd_i`) — the
    /// binary-search upper edge used by CUBIS.
    pub fn max_defender_utility(&self) -> f64 {
        self.targets.iter().map(|t| t.def_reward).fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game2() -> SecurityGame {
        SecurityGame::new(
            vec![
                TargetPayoffs::new(5.0, -3.0, 3.0, -5.0),
                TargetPayoffs::new(7.0, -7.0, 7.0, -7.0),
            ],
            1.0,
        )
    }

    #[test]
    fn utilities_interpolate_linearly() {
        let g = game2();
        assert_eq!(g.defender_utility(0, 0.0), -3.0);
        assert_eq!(g.defender_utility(0, 1.0), 5.0);
        assert_eq!(g.defender_utility(0, 0.5), 1.0);
        assert_eq!(g.attacker_utility(0, 0.0), 3.0);
        assert_eq!(g.attacker_utility(0, 1.0), -5.0);
    }

    #[test]
    fn expected_utility_weights_by_attack_distribution() {
        let g = game2();
        let x = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert_eq!(g.expected_defender_utility(&x, &q), g.defender_utility(0, 0.5));
        let q2 = [0.5, 0.5];
        let expect = 0.5 * g.defender_utility(0, 0.5) + 0.5 * g.defender_utility(1, 0.5);
        assert!((g.expected_defender_utility(&x, &q2) - expect).abs() < 1e-12);
    }

    #[test]
    fn utility_range_edges() {
        let g = game2();
        assert_eq!(g.min_defender_utility(), -7.0);
        assert_eq!(g.max_defender_utility(), 7.0);
    }

    #[test]
    #[should_panic(expected = "resources")]
    fn too_many_resources_rejected() {
        SecurityGame::new(vec![TargetPayoffs::new(1.0, -1.0, 1.0, -1.0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "no targets")]
    fn empty_game_rejected() {
        SecurityGame::new(vec![], 1.0);
    }

    #[test]
    fn coverage_check_delegates() {
        let g = game2();
        assert!(g.check_coverage(&[0.4, 0.6], 1e-9).is_ok());
        assert!(g.check_coverage(&[0.4, 0.4], 1e-9).is_err());
    }
}
