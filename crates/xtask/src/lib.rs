//! `cubis-xtask` — workspace automation for CUBIS.
//!
//! The centerpiece is a self-contained static-analysis pass
//! (`cubis-xtask analyze`) enforcing the numeric-safety rules that
//! Theorem 1's `O(ε + 1/K)` guarantee quietly assumes: no NaN-panicking
//! comparators, no raw float equality, no panicking escape hatches on
//! fallible numeric paths, no weakened atomic orderings in the parallel
//! branch-and-bound, and no unseeded randomness outside the experiment
//! binaries. The pass is wired into the tier-1 test suite via
//! `tests/tests/static_analysis.rs`, so a violation anywhere in the
//! workspace fails `cargo test`.
//!
//! Findings are suppressible only with an inline justification:
//!
//! ```text
//! x == 1.0 // cubis:allow(NUM01): exact sentinel written by this module
//! ```
//!
//! The analyzer is dependency-free by design — a hand-rolled lexer
//! ([`lexer`]) plus a token-pattern rule engine ([`rules`]) — so it
//! builds and runs even where the registry is unreachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod commands;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scopes;
pub mod trace_report;

use std::fmt;
use std::path::{Path, PathBuf};

/// Execution context of a source file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under some `crates/*/src` — the strictest class.
    Library,
    /// Integration-test code (`crates/*/tests`, the `tests` crate).
    TestFile,
    /// Benchmarks (`crates/bench`, any `benches/` directory).
    Bench,
    /// Runnable examples (`examples/`).
    Example,
    /// Binary entry points (`src/bin/*`, `src/main.rs`).
    Binary,
    /// Experiment binaries in `crates/eval/src/bin` — exempt from DET01
    /// (they may legitimately draw wall-clock entropy).
    EvalBinary,
}

/// How a finding gates: see [`rules::severity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed or justified inline with `cubis:allow`; never
    /// absorbed by the baseline.
    Deny,
    /// May additionally be recorded in the committed
    /// `analyze-baseline.json` (the ratchet for pre-existing debt).
    Warn,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`NUM01`, …, `LINT00`).
    pub rule: &'static str,
    /// Gate severity, derived from the rule.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based source line.
    pub line: u32,
    /// Scope path of the offending token (`mod tests > fn t`), `file`
    /// at top level. Empty only before the engine annotates it.
    pub scope: String,
    /// Line-number-independent identity (see [`baseline`]). Empty only
    /// before the engine annotates it.
    pub fingerprint: String,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: &'static str, path: &Path, line: u32, message: String) -> Self {
        Finding {
            rule,
            severity: rules::severity(rule),
            path: path.to_path_buf(),
            line,
            scope: String::new(),
            fingerprint: String::new(),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Classify a workspace-relative path into its execution context.
pub fn classify(rel: &Path) -> FileClass {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let first = comps.first().copied().unwrap_or("");
    if first == "examples" {
        return FileClass::Example;
    }
    if first == "tests" || comps.iter().skip(2).any(|&c| c == "tests") {
        return FileClass::TestFile;
    }
    if comps.get(1) == Some(&"bench") || comps.contains(&"benches") {
        return FileClass::Bench;
    }
    let in_bin = comps.windows(2).any(|w| w == ["src", "bin"]);
    if in_bin || comps.last() == Some(&"main.rs") {
        if comps.get(1) == Some(&"eval") {
            return FileClass::EvalBinary;
        }
        return FileClass::Binary;
    }
    FileClass::Library
}

/// Everything the engine learns from one file: its surviving findings
/// plus the cross-file facts the workspace pass aggregates.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Surviving (unsuppressed) findings, scope-annotated, sorted by
    /// line then rule. Fingerprints are assigned by the workspace pass.
    pub findings: Vec<Finding>,
    /// `.counter("name", …)` emission sites in non-test code.
    pub counters: Vec<(String, u32)>,
    /// `.span("name")` emission sites in non-test code.
    pub spans: Vec<(String, u32)>,
    /// Whether the file carries `#![forbid(unsafe_code)]` (SAFE01).
    pub has_forbid_unsafe: bool,
    /// Parsed counter/span registry, present only for
    /// `crates/trace/src/names.rs`.
    pub registry: Option<(Vec<(String, u32)>, Vec<(String, u32)>)>,
}

/// Workspace-relative path of the counter/span name registry TRC01
/// checks against.
pub const REGISTRY_PATH: &str = "crates/trace/src/names.rs";

/// Workspace-relative path of the one crate root exempt from SAFE01:
/// `cubis-reactor` carries `unsafe_code = "deny"` with a scoped
/// re-allow for its syscall module, which SAFE02 audits site-by-site.
pub const REACTOR_ROOT_PATH: &str = "crates/reactor/src/lib.rs";

/// Analyze one file's source text in full. `rel` is the
/// workspace-relative path used in findings and for classification
/// (see [`classify`]).
pub fn analyze_file(rel: &Path, class: FileClass, src: &str) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let in_test = rules::test_mask(&lexed.tokens);
    let tree = scopes::ScopeTree::build(&lexed.tokens);
    let mut findings = rules::scan_tokens(rel, class, &lexed.tokens, &in_test);
    findings.extend(rules::scan_scoped(
        rel,
        class,
        &lexed.tokens,
        &in_test,
        &tree,
    ));
    // SAFE02 sees the raw source too: its justification markers are
    // comments, which the lexer (correctly) drops from the token
    // stream.
    findings.extend(rules::scan_unsafe(rel, &lexed.tokens, src));

    // LINT00: every allow must carry a justification and name known
    // rules. These findings are not themselves suppressible.
    let mut well_formed = vec![true; lexed.allows.len()];
    for (k, allow) in lexed.allows.iter().enumerate() {
        if allow.rules.is_empty() {
            well_formed[k] = false;
            findings.push(Finding::new(
                "LINT00",
                rel,
                allow.line,
                "malformed `cubis:allow` (missing or unreadable rule list)".to_string(),
            ));
            continue;
        }
        for rule in &allow.rules {
            if !rules::ALLOWABLE_RULES.contains(&rule.as_str()) {
                well_formed[k] = false;
                findings.push(Finding::new(
                    "LINT00",
                    rel,
                    allow.line,
                    format!("`cubis:allow({rule})` names an unknown rule"),
                ));
            }
        }
        if allow.justification.is_empty() {
            well_formed[k] = false;
            findings.push(Finding::new(
                "LINT00",
                rel,
                allow.line,
                "`cubis:allow` without a justification string; explain why the pattern is \
                 sound here"
                    .to_string(),
            ));
        }
    }

    // Suppression, tracking which allows actually masked something so
    // LINT01 can flag the stale ones. Only well-formed allows suppress:
    // a marker that is itself a LINT00 (unknown rule such as SAFE02,
    // missing justification) masks nothing.
    let mut used = vec![false; lexed.allows.len()];
    findings.retain(|f| {
        if f.rule == "LINT00" {
            return true;
        }
        let hit = (0..lexed.allows.len()).find(|&k| {
            let a = &lexed.allows[k];
            well_formed[k] && a.applies_to == f.line && a.rules.iter().any(|r| r == f.rule)
        });
        match hit {
            Some(k) => {
                used[k] = true;
                false
            }
            None => true,
        }
    });
    for (k, allow) in lexed.allows.iter().enumerate() {
        if well_formed[k] && !used[k] {
            findings.push(Finding::new(
                "LINT01",
                rel,
                allow.line,
                format!(
                    "`cubis:allow({})` masks nothing here; delete the stale suppression",
                    allow.rules.join(",")
                ),
            ));
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));

    // Scope annotation: the innermost scope of the first token on the
    // finding's line (workspace rules annotate their own).
    for f in &mut findings {
        if let Some(tok) = lexed.tokens.iter().position(|t| t.line == f.line) {
            f.scope = tree.path_at(tok);
        } else {
            f.scope = "file".to_string();
        }
    }

    let (counters, spans) = if class == FileClass::Library {
        rules::collect_emissions(&lexed.tokens, &in_test)
    } else {
        (Vec::new(), Vec::new())
    };
    let registry = if rel == Path::new(REGISTRY_PATH) {
        Some(rules::parse_name_registry(&lexed.tokens).unwrap_or_default())
    } else {
        None
    };
    FileAnalysis {
        findings,
        counters,
        spans,
        has_forbid_unsafe: rules::has_forbid_unsafe(&lexed.tokens),
        registry,
    }
}

/// Analyze one file's source text and return only its findings
/// (fingerprints assigned file-locally). The workspace gate goes
/// through [`analyze_workspace_full`], which adds the cross-file rules.
pub fn analyze_source(rel: &Path, class: FileClass, src: &str) -> Vec<Finding> {
    let mut findings = analyze_file(rel, class, src).findings;
    baseline::assign_fingerprints(&mut findings);
    findings
}

/// A whole-workspace analysis: per-file findings plus the cross-file
/// invariant rules (TRC01, SAFE01), fingerprinted and sorted.
#[derive(Debug, Default)]
pub struct WorkspaceAnalysis {
    /// All surviving findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Analyze every `.rs` file reachable from the workspace root
/// (skipping `target/` and dot-directories), then run the cross-file
/// invariant rules over the aggregate.
pub fn analyze_workspace_full(root: &Path) -> std::io::Result<WorkspaceAnalysis> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut counters: Vec<(String, PathBuf, u32)> = Vec::new();
    let mut spans: Vec<(String, PathBuf, u32)> = Vec::new();
    let mut registry: Option<(Vec<(String, u32)>, Vec<(String, u32)>)> = None;
    let files_scanned = files.len();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let fa = analyze_file(rel, classify(rel), &src);
        findings.extend(fa.findings);
        counters.extend(fa.counters.into_iter().map(|(n, l)| (n, rel.clone(), l)));
        spans.extend(fa.spans.into_iter().map(|(n, l)| (n, rel.clone(), l)));
        if let Some(reg) = fa.registry {
            registry = Some(reg);
        }
        // SAFE01: every library crate root must forbid unsafe code.
        // Sole exemption: the reactor's root, which *denies* unsafe
        // crate-wide and re-allows it only for its syscall module —
        // where SAFE02 takes over and audits every site individually.
        if is_crate_root(rel) && !fa.has_forbid_unsafe && rel != Path::new(REACTOR_ROOT_PATH) {
            let mut f = Finding::new(
                "SAFE01",
                rel,
                1,
                "library crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            );
            f.scope = "file".to_string();
            findings.push(f);
        }
    }

    findings.extend(trc01(&files, registry, &counters, &spans));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    baseline::assign_fingerprints(&mut findings);
    Ok(WorkspaceAnalysis {
        findings,
        files_scanned,
    })
}

/// Back-compat shim: the flat finding list from
/// [`analyze_workspace_full`].
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_workspace_full(root)?.findings)
}

fn is_crate_root(rel: &Path) -> bool {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    comps.len() == 4 && comps[0] == "crates" && comps[2] == "src" && comps[3] == "lib.rs"
}

/// TRC01: reconcile counter/span emission sites against the registry in
/// [`REGISTRY_PATH`]. Skipped entirely (no findings) when the workspace
/// has no trace crate — partial checkouts and unit-test fixtures.
fn trc01(
    files: &[PathBuf],
    registry: Option<(Vec<(String, u32)>, Vec<(String, u32)>)>,
    counters: &[(String, PathBuf, u32)],
    spans: &[(String, PathBuf, u32)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registry_path = Path::new(REGISTRY_PATH);
    if !files.iter().any(|f| f == registry_path) {
        // No registry file in this tree: only meaningful for the real
        // workspace; stay silent unless something emits counters.
        if counters.is_empty() && spans.is_empty() {
            return findings;
        }
        let (name, path, line) = counters.iter().chain(spans).next().cloned().map_or(
            (String::new(), registry_path.to_path_buf(), 1),
            |(n, p, l)| (n, p, l),
        );
        let mut f = Finding::new(
            "TRC01",
            &path,
            line,
            format!(
                "`{name}` is emitted but {REGISTRY_PATH} is missing; add the registry so \
                 /metrics and trace-report can table counter names"
            ),
        );
        f.scope = "registry".to_string();
        findings.push(f);
        return findings;
    }
    let Some((reg_counters, reg_spans)) = registry else {
        let mut f = Finding::new(
            "TRC01",
            registry_path,
            1,
            "COUNTERS/SPANS tables not found; keep the registry parseable (a `&[(&str, \
             &str)]` literal per table)"
                .to_string(),
        );
        f.scope = "registry".to_string();
        findings.push(f);
        return findings;
    };
    let check = |kind: &str,
                 reg: &[(String, u32)],
                 emitted: &[(String, PathBuf, u32)],
                 findings: &mut Vec<Finding>| {
        for (name, path, line) in emitted {
            if !reg.iter().any(|(n, _)| n == name) {
                let mut f = Finding::new(
                    "TRC01",
                    path,
                    *line,
                    format!(
                        "{kind} `{name}` is emitted here but not registered in \
                         cubis_trace::names; /metrics and trace-report cannot table it"
                    ),
                );
                f.scope = format!("{kind}s");
                findings.push(f);
            }
        }
        for (name, line) in reg {
            if !emitted.iter().any(|(n, _, _)| n == name) {
                let mut f = Finding::new(
                    "TRC01",
                    registry_path,
                    *line,
                    format!(
                        "registered {kind} `{name}` has no library emission site (dead \
                         entry); remove it or emit it"
                    ),
                );
                f.scope = format!("{kind}s");
                findings.push(f);
            }
        }
    };
    check("counter", &reg_counters, counters, &mut findings);
    check("span", &reg_spans, spans, &mut findings);
    findings
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: walk upward from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<Finding> {
        analyze_source(Path::new("crates/demo/src/lib.rs"), FileClass::Library, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- NUM01 -------------------------------------------------------

    #[test]
    fn num01_fires_on_raw_float_equality() {
        let f = lib("fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(rules_of(&f), ["NUM01"]);
        let f = lib("fn f(x: f64) -> bool { 1.5e-3 != x }");
        assert_eq!(rules_of(&f), ["NUM01"]);
        let f = lib("fn f(x: f64) -> bool { x == f64::NAN }");
        assert_eq!(rules_of(&f), ["NUM01"]);
    }

    #[test]
    fn num01_allowlisted_hit_is_suppressed() {
        let f =
            lib("fn f(x: f64) -> bool {\n    x == 0.0 // cubis:allow(NUM01): exact sentinel\n}");
        assert!(f.is_empty(), "{f:?}");
        // Standalone allow on the preceding line also suppresses.
        let f = lib(
            "fn f(x: f64) -> bool {\n    // cubis:allow(NUM01): exact sentinel\n    x == 0.0\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn num01_ignores_ints_tests_and_literals_in_strings() {
        assert!(lib("fn f(n: usize) -> bool { n == 0 }").is_empty());
        assert!(lib("const S: &str = \"x == 0.0\";").is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn g(x: f64) -> bool { x == 0.5 }\n}";
        assert!(lib(test_mod).is_empty());
        let f = analyze_source(
            Path::new("crates/demo/tests/it.rs"),
            classify(Path::new("crates/demo/tests/it.rs")),
            "fn f(x: f64) -> bool { x == 0.5 }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // ---- NUM02 -------------------------------------------------------

    #[test]
    fn num02_fires_on_unwrap_expect_and_panics() {
        let f = lib("fn f(o: Option<f64>) -> f64 { o.unwrap() }");
        assert_eq!(rules_of(&f), ["NUM02"]);
        let f = lib("fn f(o: Option<f64>) -> f64 { o.expect(\"set\") }");
        assert_eq!(rules_of(&f), ["NUM02"]);
        let f = lib("fn f() { panic!(\"boom\") }");
        assert_eq!(rules_of(&f), ["NUM02"]);
        let f = lib("fn f(n: u8) { match n { 0 => {} _ => unreachable!() } }");
        assert_eq!(rules_of(&f), ["NUM02"]);
    }

    #[test]
    fn num02_exempts_tests_and_allows_with_justification() {
        let in_test =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}";
        assert!(lib(in_test).is_empty());
        let f = lib("fn f(o: Option<f64>) -> f64 {\n    o.unwrap() // cubis:allow(NUM02): guarded by is_some above\n}");
        assert!(f.is_empty(), "{f:?}");
        // Doc comments mentioning unwrap never fire.
        assert!(lib("/// Calls `.unwrap()` internally — no it does not.\nfn f() {}").is_empty());
    }

    #[test]
    fn num02_exempts_bench_and_example_files() {
        for rel in ["crates/bench/benches/t1.rs", "examples/quickstart.rs"] {
            let p = Path::new(rel);
            let f = analyze_source(p, classify(p), "fn f(o: Option<u8>) { o.unwrap(); }");
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    // ---- NUM03 -------------------------------------------------------

    #[test]
    fn num03_fires_on_partial_cmp_unwrap_and_sort_by() {
        let f = lib("fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }");
        assert_eq!(rules_of(&f), ["NUM03"]);
        let f = lib("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(rules_of(&f), ["NUM03"]);
        // unwrap_or(Equal) hides NaN instead of panicking: still a finding.
        let f =
            lib("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(O::Equal)); }");
        assert_eq!(rules_of(&f), ["NUM03"]);
    }

    #[test]
    fn num03_applies_inside_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}";
        assert_eq!(rules_of(&lib(src)), ["NUM03"]);
    }

    #[test]
    fn num03_accepts_total_cmp_and_bare_partial_cmp() {
        assert!(lib("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
        // A PartialOrd impl legitimately calls partial_cmp with no unwrap.
        assert!(lib("fn f(a: f64, b: f64) -> Option<O> { a.partial_cmp(&b) }").is_empty());
    }

    // ---- CONC01 ------------------------------------------------------

    #[test]
    fn conc01_fires_on_relaxed_ordering() {
        let f = lib("fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }");
        assert_eq!(rules_of(&f), ["CONC01"]);
    }

    #[test]
    fn conc01_accepts_acquire_release_and_allowed_relaxed() {
        assert!(lib("fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }").is_empty());
        let f = lib(
            "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed) // cubis:allow(CONC01): pure statistics counter\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // ---- DET01 -------------------------------------------------------

    #[test]
    fn det01_fires_on_unseeded_rng_in_lib_and_tests() {
        let f = lib("fn f() -> f64 { rand::thread_rng().gen() }");
        assert_eq!(rules_of(&f), ["DET01"]);
        let f = lib("fn f() -> StdRng { StdRng::from_entropy() }");
        assert_eq!(rules_of(&f), ["DET01"]);
        let p = Path::new("crates/demo/tests/it.rs");
        let f = analyze_source(p, classify(p), "fn f() -> f64 { rand::random() }");
        assert_eq!(rules_of(&f), ["DET01"]);
    }

    #[test]
    fn det01_exempts_eval_binaries_and_benches() {
        for rel in [
            "crates/eval/src/bin/exp_table1.rs",
            "crates/bench/benches/t1.rs",
        ] {
            let p = Path::new(rel);
            let f = analyze_source(p, classify(p), "fn f() -> f64 { rand::thread_rng().gen() }");
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }

    // ---- LINT00 ------------------------------------------------------

    #[test]
    fn allow_without_justification_is_itself_a_finding() {
        let f = lib("fn f(x: f64) -> bool { x == 0.0 } // cubis:allow(NUM01)");
        // The empty-justification allow does NOT suppress, and is reported.
        assert_eq!(rules_of(&f), ["LINT00", "NUM01"]);
    }

    #[test]
    fn allow_naming_unknown_rule_is_a_finding() {
        let f = lib("fn f() {} // cubis:allow(NUM99): misremembered rule id");
        assert_eq!(rules_of(&f), ["LINT00"]);
    }

    #[test]
    fn doc_comments_describing_the_syntax_are_not_allows() {
        assert!(lib("/// Suppress with `cubis:allow(NUM01)`.\nfn f() {}").is_empty());
        assert!(lib("//! `cubis:allow(BOGUS)` syntax docs.\nfn f() {}").is_empty());
    }

    // ---- SAFE02 ------------------------------------------------------

    #[test]
    fn safe02_fires_on_unsafe_outside_the_sys_module() {
        let f = lib("fn f(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(rules_of(&f), ["SAFE02"]);
        // Test code gets no exemption: unsafe is confined by *path*.
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t(p: *const u8) -> u8 { unsafe { *p } }\n}";
        assert_eq!(rules_of(&lib(in_test)), ["SAFE02"]);
    }

    #[test]
    fn safe02_requires_audit_markers_in_the_sys_module() {
        let p = Path::new("crates/reactor/src/sys.rs");
        let marked = "fn f(p: *const u8) -> u8 {\n    \
             // cubis:sys-audit: p is non-null and aligned by the caller's contract\n    \
             unsafe { *p }\n}";
        assert!(analyze_source(p, classify(p), marked).is_empty());
        let unmarked = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}";
        assert_eq!(
            rules_of(&analyze_source(p, classify(p), unmarked)),
            ["SAFE02"]
        );
        // A marker too far above the site justifies nothing.
        let distant = format!(
            "// cubis:sys-audit: stale marker\n{}fn f(p: *const u8) -> u8 {{ unsafe {{ *p }} }}",
            "\n".repeat(rules::SYS_AUDIT_WINDOW as usize + 1)
        );
        assert_eq!(
            rules_of(&analyze_source(p, classify(p), &distant)),
            ["SAFE02"]
        );
    }

    #[test]
    fn safe02_is_not_suppressible_and_ignores_prose() {
        // An allow marker naming SAFE02 is an unknown-rule LINT00
        // (SAFE02 is deliberately absent from ALLOWABLE_RULES), and
        // the finding survives.
        let f = lib("fn f(p: *const u8) -> u8 { unsafe { *p } } // cubis:allow(SAFE02): no");
        assert_eq!(rules_of(&f), ["LINT00", "SAFE02"]);
        // Doc comments and strings mentioning the keyword never fire.
        assert!(lib("/// Uses no `unsafe` anywhere.\nfn f() {}").is_empty());
        assert!(lib("const S: &str = \"unsafe { }\";").is_empty());
    }

    // ---- classification ---------------------------------------------

    #[test]
    fn path_classification() {
        let cases = [
            ("crates/core/src/solver.rs", FileClass::Library),
            ("crates/core/src/inner/dp.rs", FileClass::Library),
            (
                "crates/lp/tests/simplex_correctness.rs",
                FileClass::TestFile,
            ),
            ("tests/tests/pipeline.rs", FileClass::TestFile),
            ("tests/src/lib.rs", FileClass::TestFile),
            ("crates/bench/benches/table1.rs", FileClass::Bench),
            ("examples/quickstart.rs", FileClass::Example),
            ("crates/eval/src/bin/run_all.rs", FileClass::EvalBinary),
            ("crates/xtask/src/main.rs", FileClass::Binary),
            ("crates/eval/src/metrics.rs", FileClass::Library),
        ];
        for (path, expect) in cases {
            assert_eq!(classify(Path::new(path)), expect, "{path}");
        }
    }

    #[test]
    fn lexer_handles_strings_chars_lifetimes_and_raw_strings() {
        let src = r##"
            fn f<'a>(s: &'a str) -> char {
                let _r = r#"x.partial_cmp(y).unwrap()"#;
                let _q = "thread_rng() == 0.0";
                let _c = '\'';
                let _b = b"panic!";
                'x'
            }
        "##;
        assert!(lib(src).is_empty());
    }

    #[test]
    fn float_literal_lexing() {
        use crate::lexer::{lex, TokKind};
        let toks = lex("let a = 1.0 + 2. + 3e-4 + 5f64 + 6_u32 + v[0].1.min(x) + (0..9)");
        let floats: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "2.", "3e-4", "5f64"]);
    }
}
