//! Command-line entry point: `cargo run -p cubis-xtask -- <command>`.
//!
//! * `analyze [--root <dir>]` — run the numeric-safety pass over the
//!   workspace; exit 1 if any unsuppressed finding remains.
//! * `rules` — print the rule table.
//! * `ci [--root <dir>]` — the single local pre-merge gate: chains
//!   `cargo fmt --check`, the analyze pass, and `cargo test -q`.

use cubis_xtask::{analyze_workspace, find_workspace_root, rules::RULE_DOCS};
use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "analyze" => match resolve_root(&args) {
            Ok(root) => analyze(&root),
            Err(e) => usage(&e),
        },
        "ci" => match resolve_root(&args) {
            Ok(root) => ci(&root),
            Err(e) => usage(&e),
        },
        "rules" => {
            for (id, doc) in RULE_DOCS {
                println!("{id:7} {doc}");
            }
            ExitCode::SUCCESS
        }
        _ => usage("expected a subcommand: analyze | rules | ci"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("cubis-xtask: {err}");
    eprintln!("usage: cubis-xtask <analyze|rules|ci> [--root <workspace-dir>]");
    ExitCode::from(2)
}

/// `--root <dir>` if given, else the enclosing workspace of the current
/// directory (falling back to this crate's own workspace when invoked
/// via `cargo run` from elsewhere).
fn resolve_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(pos) = args.iter().position(|a| a == "--root") {
        let dir = args
            .get(pos + 1)
            .ok_or_else(|| "--root requires a directory argument".to_string())?;
        return Ok(PathBuf::from(dir));
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    find_workspace_root(&cwd)
        .or_else(|| {
            // When run via `cargo run` from outside the tree, fall back to
            // the workspace this binary was built from.
            option_env!("CARGO_MANIFEST_DIR")
                .and_then(|dir| find_workspace_root(&PathBuf::from(dir)))
        })
        .ok_or_else(|| "no enclosing Cargo workspace found; pass --root".to_string())
}

fn analyze(root: &PathBuf) -> ExitCode {
    if analyze_gate(root) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run the pass and report; true when the workspace is clean.
fn analyze_gate(root: &PathBuf) -> bool {
    match analyze_workspace(root) {
        Ok(findings) if findings.is_empty() => {
            println!("cubis-xtask analyze: workspace clean");
            true
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("cubis-xtask analyze: {} finding(s)", findings.len());
            false
        }
        Err(e) => {
            eprintln!("cubis-xtask analyze: io error: {e}");
            false
        }
    }
}

fn ci(root: &PathBuf) -> ExitCode {
    let steps: &[(&str, &[&str])] = &[
        ("cargo fmt --check", &["fmt", "--", "--check"]),
        ("cargo test -q", &["test", "-q"]),
    ];
    println!("[1/3] cargo fmt --check");
    if !run_cargo(root, steps[0].1) {
        return ExitCode::FAILURE;
    }
    println!("[2/3] cubis-xtask analyze");
    if !analyze_gate(root) {
        return ExitCode::FAILURE;
    }
    println!("[3/3] cargo test -q");
    if !run_cargo(root, steps[1].1) {
        return ExitCode::FAILURE;
    }
    println!("ci: all gates passed");
    ExitCode::SUCCESS
}

fn run_cargo(root: &PathBuf, args: &[&str]) -> bool {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) if status.success() => true,
        Ok(status) => {
            eprintln!("ci: `cargo {}` failed with {status}", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("ci: could not spawn cargo: {e}");
            false
        }
    }
}
