//! Regression: a T = 6, K = 32 CUBIS node LP whose default-mode solve
//! drifts into a near-singular basis (steady tableau growth, violation
//! exposed at refactorization). Must be rescued by the safe-mode retry.

use cubis_lp::{parse_dump, solve, LpOptions, LpStatus};

#[test]
fn t6_k32_node_lp_solves_cleanly() {
    let p = parse_dump(include_str!("data_fail_lp_3.txt")).expect("parse dump");
    let sol = solve(&p, &LpOptions::default()).expect("no numerical breakdown");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(p.max_violation(&sol.x) < 1e-6);
}
